"""Schedulable hardware resources.

Both simulators express functional units, register-file ports and the memory
address bus as resources on which instructions reserve busy intervals.  The
out-of-order simulator needs *gap filling*: a younger instruction that is
ready early may claim a slot on a unit before an older, still-waiting
instruction uses it.  :class:`GapResource` provides exactly that — reserve
the earliest interval of a given length starting at or after a given cycle.

:class:`PipelinedResource` models fully pipelined units that accept one new
operation per cycle (the scalar units): a reservation occupies a single
issue slot, not the whole latency.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.common.intervals import BusyTracker, splice_suffix
from repro.machine.component import ComponentBase


class GapResource(ComponentBase):
    """A resource that can serve one operation at a time, with gap filling.

    Reservations are kept as a sorted list of disjoint ``[start, end)``
    intervals.  :meth:`reserve` finds the earliest gap that fits.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._starts: list[int] = []
        self._ends: list[int] = []
        self.tracker = BusyTracker(name)

    def reserve(self, earliest: int, duration: int) -> int:
        """Reserve ``duration`` cycles starting no earlier than ``earliest``.

        Returns the start cycle of the reservation.  Zero-duration requests
        are legal and return ``earliest`` without reserving anything.
        """
        if duration < 0:
            raise ValueError("reservation duration must be non-negative")
        if duration == 0:
            return earliest

        start = self._find_start(earliest, duration)
        self._insert(start, start + duration)
        self.tracker.add(start, start + duration)
        return start

    def next_free(self, earliest: int, duration: int) -> int:
        """Return where :meth:`reserve` would place a request, without reserving."""
        if duration <= 0:
            return earliest
        return self._find_start(earliest, duration)

    def busy_cycles(self) -> int:
        return self.tracker.busy_cycles()

    # -- chunked-simulation state (see repro.parallel) ----------------------

    def snapshot(self) -> dict:
        """JSON-compatible snapshot of the reservation and busy state."""
        return {
            "busy": [[s, e] for s, e in zip(self._starts, self._ends, strict=True)],
            "tracker": self.tracker.to_pairs(),
        }

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot` (replaces all current state)."""
        self._starts = [int(pair[0]) for pair in state["busy"]]
        self._ends = [int(pair[1]) for pair in state["busy"]]
        self.tracker = BusyTracker.from_pairs(self.name, state["tracker"])

    def reset(self) -> None:
        """Return to the freshly constructed (idle) state."""
        self._starts = []
        self._ends = []
        self.tracker = BusyTracker(self.name)

    def quiescent(self, anchor: int) -> bool:
        """True when no reservation extends past ``anchor``."""
        return not self._ends or self._ends[-1] <= anchor

    def envelope(self, anchor: int) -> list[list[int]]:
        """The reservations still visible past ``anchor``, anchor-normalised.

        Every interval ending past the anchor is reported as
        ``[max(start - anchor, 0), end - anchor]``; sub-anchor reservations
        are clamped out because :meth:`reserve` requests always arrive at or
        after the anchor, where only the interval *ends* above it can still
        displace a request.  Empty exactly when :meth:`quiescent`.
        """
        return [
            [max(start - anchor, 0), end - anchor]
            for start, end in zip(self._starts, self._ends, strict=True)
            if end > anchor
        ]

    def splice_mark(self) -> list[int]:
        """Bookmark the recording order for a later :meth:`splice_delta`."""
        return self.tracker.splice_mark()

    def splice_extra(self) -> list[list[int]]:
        """The raw (unmerged) busy pairs a :meth:`splice_mark` indexes into."""
        return self.tracker.raw_pairs()

    @staticmethod
    def splice_delta(
        state: dict, extra: Optional[Sequence[Sequence[int]]], mark: Sequence[int]
    ) -> dict:
        """Reduce a worker exit snapshot to the reservations made after ``mark``.

        The worker's pre-checkpoint reservations duplicate work the parent
        replayed itself; only the suffix may be absorbed.  Every reservation
        lands in the tracker, so the suffix is recovered from the raw
        tracker dump (``extra``) and stands in for both the reservation
        structure and the busy record.
        """
        pairs = splice_suffix(extra or [], mark)
        return {"busy": pairs, "tracker": pairs}

    def absorb(self, state: dict, delta: int) -> None:
        """Insert a worker's (shifted) reservations among the parent's own.

        After a fully-quiescent cut the parent's old intervals all end
        ``<= delta`` and the shifted worker intervals simply extend the
        tail; after an envelope splice the suffix reservations may gap-fill
        below the parent's tail, so each pair goes through :meth:`_insert`
        (which also merges exact adjacency, keeping the reservation list in
        the same canonical shape a monolithic run produces).
        """
        for start, end in state["busy"]:
            self._insert(int(start) + delta, int(end) + delta)
        for start, end in state["tracker"]:
            self.tracker.add(int(start) + delta, int(end) + delta)

    def _find_start(self, earliest: int, duration: int) -> int:
        starts, ends = self._starts, self._ends
        idx = bisect_left(ends, earliest)
        if idx > 0:
            idx -= 1
        candidate = earliest
        for i in range(max(idx, 0), len(starts)):
            if starts[i] >= candidate + duration:
                break
            candidate = max(candidate, ends[i])
        return candidate

    def _insert(self, start: int, end: int) -> None:
        starts, ends = self._starts, self._ends
        idx = bisect_left(starts, start)
        # merge with neighbours when adjacent to keep the lists compact
        if idx > 0 and ends[idx - 1] == start:
            ends[idx - 1] = end
            if idx < len(starts) and starts[idx] == end:
                ends[idx - 1] = ends[idx]
                del starts[idx]
                del ends[idx]
            return
        if idx < len(starts) and starts[idx] == end:
            starts[idx] = start
            return
        starts.insert(idx, start)
        ends.insert(idx, end)


class PipelinedResource(ComponentBase):
    """A fully pipelined unit accepting at most ``width`` new operations/cycle."""

    def __init__(self, name: str = "", width: int = 1) -> None:
        if width < 1:
            raise ValueError("pipelined resource width must be at least 1")
        self.name = name
        self.width = width
        self._slots: dict[int, int] = {}
        self.operations = 0

    def reserve(self, earliest: int) -> int:
        """Claim an issue slot at or after ``earliest`` and return its cycle."""
        cycle = earliest
        while self._slots.get(cycle, 0) >= self.width:
            cycle += 1
        self._slots[cycle] = self._slots.get(cycle, 0) + 1
        self.operations += 1
        return cycle

    # -- chunked-simulation state (see repro.parallel) ----------------------

    def snapshot(self) -> dict:
        """JSON-compatible snapshot of issue-slot occupancy."""
        return {
            "slots": sorted([cycle, count] for cycle, count in self._slots.items()),
            "operations": self.operations,
        }

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot` (replaces all current state)."""
        self._slots = {int(cycle): int(count) for cycle, count in state["slots"]}
        self.operations = int(state["operations"])

    def reset(self) -> None:
        """Return to the freshly constructed (idle) state."""
        self._slots = {}
        self.operations = 0

    def quiescent(self, anchor: int) -> bool:
        """True when no issue slot is claimed past ``anchor``."""
        return not self._slots or max(self._slots) <= anchor

    def envelope(self, anchor: int) -> list[list[int]]:
        """Issue slots claimed past ``anchor``, anchor-normalised and sorted.

        Reservations arrive at or after the anchor, so slots at or below it
        can never turn away another request.  Empty exactly when
        :meth:`quiescent`.
        """
        return sorted(
            [cycle - anchor, count]
            for cycle, count in self._slots.items()
            if cycle > anchor
        )

    def splice_mark(self) -> int:
        """Bookmark the operation count for a later :meth:`splice_delta`."""
        return self.operations

    @staticmethod
    def splice_delta(state: dict, extra: object, mark: int) -> dict:
        """Reduce a worker exit snapshot to the post-checkpoint operations.

        The slot map is replace-style (absorb overwrites it wholesale) and
        passes through; only the additive operation counter must shed the
        prefix the parent replayed itself.
        """
        return {"slots": state["slots"], "operations": int(state["operations"]) - int(mark)}

    def absorb(self, state: dict, delta: int) -> None:
        """Replace the slots with the worker's (shifted); counters add.

        The parent's old issue slots all sit at cycles ``<= delta`` and are
        dominated; only the worker's shifted slots can matter again.
        """
        self._slots = {
            int(cycle) + delta: int(count) for cycle, count in state["slots"]
        }
        self.operations += int(state["operations"])


@dataclass
class InOrderPipe(ComponentBase):
    """An in-order pipeline stage sequence processing one instruction per cycle.

    Used for the OOOVA memory pipeline (Issue/RF, Range, Dependence): entries
    enter in program order, advance one stage per cycle, and the exit time of
    instruction *i* is at least one cycle after the exit time of *i-1*.
    """

    depth: int = 3
    last_exit: int = field(default=-1)

    def advance(self, enter_time: int) -> int:
        """Return the cycle at which an instruction entering at ``enter_time``
        leaves the final stage."""
        exit_time = max(enter_time + self.depth, self.last_exit + 1)
        self.last_exit = exit_time
        return exit_time

    # -- chunked-simulation state (see repro.parallel) ----------------------

    def snapshot(self) -> dict:
        return {"last_exit": self.last_exit}

    def restore(self, state: dict) -> None:
        self.last_exit = int(state["last_exit"])

    def reset(self) -> None:
        self.last_exit = -1

    def quiescent(self, anchor: int) -> bool:
        """The pipe may run ``depth`` cycles past the anchor.

        Traversal enters at ``rename + 1`` and exits ``depth`` stages
        later, so ``last_exit`` up to ``anchor + depth`` is still dominated
        by post-anchor traffic.
        """
        return self.last_exit <= anchor + self.depth

    def envelope(self, anchor: int) -> int:
        """How far ``last_exit`` overhangs the dominated band past ``anchor``.

        Zero (falsy) exactly when :meth:`quiescent` — exits up to
        ``anchor + depth`` are reproduced by any post-anchor traversal.
        """
        return max(self.last_exit - anchor - self.depth, 0)
