"""Machine-parameter dataclasses shared by both simulators.

The numbers follow Section 2 and Table 1 of the paper.  Table 1 in the
scanned text is partially garbled; where a value is unreadable we use the
closest value consistent with the prose (these choices are documented in
EXPERIMENTS.md and do not affect the qualitative results, which depend on
the *relative* cost of memory versus computation).

Two architectures are parameterised here:

* :class:`ReferenceParams` — the in-order Convex C3400-like reference
  machine (Section 2.1).
* :class:`OOOParams` — the out-of-order, register-renaming OOOVA machine
  (Section 2.2), including the commit model of Section 5 and the dynamic
  load elimination configuration of Section 6.
"""

from __future__ import annotations

import enum
import functools
import typing
from dataclasses import dataclass, field, fields, replace

from repro.common.errors import ConfigurationError

#: Maximum number of 64-bit elements held by one vector register.
MAX_VECTOR_LENGTH = 128

#: Number of architected registers per class in the Convex-like ISA.
NUM_ARCH_VREGS = 8
NUM_ARCH_AREGS = 8
NUM_ARCH_SREGS = 8
NUM_ARCH_MASKREGS = 8


class CommitModel(enum.Enum):
    """How the OOOVA releases physical registers and retires stores.

    ``EARLY``  — the aggressive model of Section 2.2: a vector instruction's
    reorder-buffer slot becomes committable as soon as the instruction
    *begins* execution, and the old physical register is released when the
    slot reaches the head of the buffer.  Stores may execute as soon as
    their data is ready.  Precise exceptions are not possible.

    ``LATE`` — the precise-trap model of Section 5: an instruction commits
    only after it has fully completed, and stores execute only when they are
    the oldest uncommitted instruction (head of the reorder buffer).
    """

    EARLY = "early"
    LATE = "late"


class LoadElimination(enum.Enum):
    """Dynamic load elimination configuration (Section 6)."""

    NONE = "none"
    #: scalar load elimination only (A and S registers)
    SLE = "sle"
    #: scalar and vector load elimination
    SLE_VLE = "sle+vle"


@dataclass(frozen=True)
class FunctionalUnitLatencies:
    """Pipeline depths, in cycles, of the vector and scalar functional units.

    A vector instruction produces its first result ``<latency>`` cycles after
    it starts and one further element per cycle after that; the functional
    unit is occupied for ``vector_length`` cycles.
    """

    #: simple integer/logical/shift vector operations (FU1 or FU2)
    logical: int = 3
    #: floating point add/subtract/compare
    add: int = 4
    #: floating point / integer multiply (FU2 only)
    mul: int = 4
    #: divide (FU2 only)
    div: int = 9
    #: square root (FU2 only)
    sqrt: int = 9
    #: cycles to cross the read crossbar from a register to a unit
    read_crossbar: int = 1
    #: cycles to cross the write crossbar back into the register file
    write_crossbar: int = 2
    #: fixed start-up overhead charged to every vector instruction
    vector_startup: int = 4
    #: scalar ALU operation latency
    scalar_alu: int = 1
    #: scalar multiply latency
    scalar_mul: int = 3
    #: scalar divide latency
    scalar_div: int = 9
    #: latency of a scalar memory access (the C34 caches scalar data)
    scalar_mem: int = 8

    def vector_op_latency(self, op_class: str) -> int:
        """Return the pipeline depth for a vector op class name.

        ``op_class`` is one of ``logical``, ``add``, ``mul``, ``div``,
        ``sqrt``.
        """
        try:
            return int(getattr(self, op_class))
        except AttributeError as exc:
            raise ConfigurationError(f"unknown vector op class: {op_class!r}") from exc


@dataclass(frozen=True)
class MemoryParams:
    """Main-memory timing model (Section 2.2, "Machine Parameters").

    There is a single address bus shared by all memory transactions and
    physically separate data busses for sending and receiving data.  Vector
    loads pay ``latency`` cycles and then receive one datum per cycle;
    vector stores occupy the address bus but do not expose latency.
    """

    #: main-memory latency in cycles (the paper varies this from 1 to 100)
    latency: int = 50
    #: addresses issued on the address bus per cycle
    addresses_per_cycle: int = 1

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError("memory latency must be non-negative")
        if self.addresses_per_cycle < 1:
            raise ConfigurationError("addresses_per_cycle must be at least 1")


@dataclass(frozen=True)
class ReferenceParams:
    """Parameters of the in-order reference architecture (Convex C3400)."""

    latencies: FunctionalUnitLatencies = field(default_factory=FunctionalUnitLatencies)
    memory: MemoryParams = field(default_factory=MemoryParams)
    #: number of architected vector registers
    num_vregs: int = NUM_ARCH_VREGS
    #: vector registers per register-file bank (banks share 2R + 1W ports)
    vregs_per_bank: int = 2
    #: read ports per register bank
    bank_read_ports: int = 2
    #: write ports per register bank
    bank_write_ports: int = 1
    #: chaining from functional units to functional units and to stores
    chain_fu_to_fu: bool = True
    chain_fu_to_store: bool = True
    #: the C34 does *not* chain memory loads into functional units
    chain_load_to_fu: bool = False
    #: scalar unit issues at most this many instructions per cycle
    scalar_issue_width: int = 1
    #: fetch bubble charged after a taken branch on the in-order machine
    taken_branch_penalty: int = 2

    def with_memory_latency(self, latency: int) -> "ReferenceParams":
        """Return a copy of these parameters with a different memory latency."""
        return replace(self, memory=replace(self.memory, latency=latency))


@dataclass(frozen=True)
class OOOParams:
    """Parameters of the out-of-order, renaming OOOVA architecture."""

    latencies: FunctionalUnitLatencies = field(default_factory=FunctionalUnitLatencies)
    memory: MemoryParams = field(default_factory=MemoryParams)

    #: number of *physical* vector registers (the paper sweeps 9..64)
    num_phys_vregs: int = 16
    #: physical scalar register files (Section 2.2: 64 each)
    num_phys_aregs: int = 64
    num_phys_sregs: int = 64
    #: physical mask registers
    num_phys_maskregs: int = 8

    #: reorder-buffer entries
    rob_entries: int = 64
    #: slots in each of the four instruction queues (A, S, V, M)
    queue_slots: int = 16
    #: instructions fetched / decoded / renamed per cycle
    fetch_width: int = 1
    #: maximum instructions committed per cycle
    commit_width: int = 4

    #: branch target buffer entries (2-bit saturating counters)
    btb_entries: int = 64
    #: return-address-stack depth
    ras_depth: int = 8
    #: extra fetch bubble charged on a branch misprediction, on top of
    #: waiting for the branch to resolve
    branch_mispredict_penalty: int = 2

    commit_model: CommitModel = CommitModel.EARLY
    load_elimination: LoadElimination = LoadElimination.NONE

    #: chaining rules carried over from the reference implementation
    chain_fu_to_fu: bool = True
    chain_fu_to_store: bool = True
    chain_load_to_fu: bool = False

    def __post_init__(self) -> None:
        if self.num_phys_vregs < NUM_ARCH_VREGS + 1:
            raise ConfigurationError(
                "the OOOVA needs at least one more physical vector register "
                f"than the {NUM_ARCH_VREGS} architected ones "
                f"(got {self.num_phys_vregs})"
            )
        if self.num_phys_aregs < NUM_ARCH_AREGS + 1:
            raise ConfigurationError("too few physical A registers")
        if self.num_phys_sregs < NUM_ARCH_SREGS + 1:
            raise ConfigurationError("too few physical S registers")
        if self.num_phys_maskregs < NUM_ARCH_MASKREGS:
            raise ConfigurationError("too few physical mask registers")
        if self.rob_entries < 1:
            raise ConfigurationError("reorder buffer needs at least one entry")
        if self.queue_slots < 1:
            raise ConfigurationError("instruction queues need at least one slot")
        if self.commit_width < 1 or self.fetch_width < 1:
            raise ConfigurationError("fetch and commit widths must be positive")

    def with_memory_latency(self, latency: int) -> "OOOParams":
        """Return a copy of these parameters with a different memory latency."""
        return replace(self, memory=replace(self.memory, latency=latency))

    def with_phys_vregs(self, count: int) -> "OOOParams":
        """Return a copy with a different physical vector register count."""
        return replace(self, num_phys_vregs=count)


# ---------------------------------------------------------------------------
# Serialisation (used by the persistent result store in repro.core.runner)
# ---------------------------------------------------------------------------

#: serialisation kind -> parameter dataclass, extended by the machine-model
#: registry (repro.core.machines) as models register
_PARAMS_KINDS: dict[str, type] = {}


def register_params_kind(kind: str, params_type: type) -> None:
    """Register a machine-parameter dataclass under a serialisation ``kind``.

    Called by :func:`repro.core.machines.register_machine` for every
    registered model, so any machine's dataclass parameters round-trip
    through :func:`params_to_dict`/:func:`params_from_dict` (and therefore
    through the persistent result store) without bespoke code.
    """
    existing = _PARAMS_KINDS.get(kind)
    if existing is not None and existing is not params_type:
        raise ConfigurationError(
            f"parameter kind {kind!r} is already registered for "
            f"{existing.__name__}"
        )
    _PARAMS_KINDS[kind] = params_type


def _ensure_machine_kinds() -> None:
    """Force the machine-model registry to register its parameter kinds."""
    from repro.core.machines import machine_names

    machine_names()  # initialising the registry registers the kinds


def _kind_of(params: object) -> str:
    """The serialisation kind of ``params`` (exact type match only).

    Exactness matters: a subclassed parameter type (e.g. the ``inorder``
    machine's) is a different design point and must not serialise under
    its parent's kind.
    """
    for _ in range(2):
        for kind, cls in _PARAMS_KINDS.items():
            if type(params) is cls:
                return kind
        _ensure_machine_kinds()
    raise ConfigurationError(
        f"cannot serialise parameters of type {type(params)!r}; "
        "register the machine model first"
    )


def params_to_dict(params: typing.Any) -> dict:
    """Serialise machine parameters to a JSON-compatible dictionary.

    Accepts any *registered* parameter dataclass (see
    :func:`register_params_kind`), not just the built-in two.

    The dictionary carries a ``kind`` discriminator so the matching dataclass
    can be rebuilt by :func:`params_from_dict`; enum members are stored by
    value.
    """
    payload: dict = {"kind": _kind_of(params)}
    for f in fields(params):
        value = getattr(params, f.name)
        if isinstance(value, enum.Enum):
            value = value.value
        elif isinstance(value, (FunctionalUnitLatencies, MemoryParams)):
            value = {sub.name: getattr(value, sub.name) for sub in fields(value)}
        payload[f.name] = value
    return payload


@functools.lru_cache(maxsize=None)
def _field_hints(cls: type) -> dict:
    """Resolved annotations of a parameter dataclass (cached per class).

    Every stored-result load deserialises parameters; re-evaluating the
    string annotations each time would dominate warm store scans.
    """
    return typing.get_type_hints(cls)


def params_from_dict(payload: dict) -> typing.Any:
    """Rebuild machine parameters (of any registered kind) from :func:`params_to_dict` output.

    Works for any registered parameter kind: nested latency/memory blocks
    (when the dataclass has them — third-party parameter types need not)
    rebuild their dataclasses, and enum-typed fields (discovered from the
    dataclass annotations) are coerced from their stored values.
    """
    data = dict(payload)
    kind = data.pop("kind", None)
    cls = _PARAMS_KINDS.get(kind) if isinstance(kind, str) else None
    if cls is None and isinstance(kind, str):
        _ensure_machine_kinds()
        cls = _PARAMS_KINDS.get(kind)
    if cls is None:
        raise ConfigurationError(f"unknown machine-parameter kind {kind!r}")
    if "latencies" in data:
        data["latencies"] = FunctionalUnitLatencies(**data["latencies"])
    if "memory" in data:
        data["memory"] = MemoryParams(**data["memory"])
    hints = _field_hints(cls)
    for name, value in list(data.items()):
        target = hints.get(name)
        if isinstance(target, type) and issubclass(target, enum.Enum):
            data[name] = target(value)
    try:
        return cls(**data)
    except TypeError as exc:
        raise ConfigurationError(
            f"cannot rebuild {kind!r} parameters from stored payload: {exc}"
        ) from exc


register_params_kind("reference", ReferenceParams)
register_params_kind("ooo", OOOParams)
