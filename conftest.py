"""Pytest path bootstrap.

Ensures the ``src`` layout is importable even when the package has not been
installed (e.g. running the test suite straight from a source checkout on an
offline machine).  When ``repro`` is already installed — the normal case
after ``pip install -e .`` — this is a no-op.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)
