"""Unit and property tests for interval bookkeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.intervals import (
    BusyTracker,
    Interval,
    merge_intervals,
    state_breakdown,
    total_busy,
)


class TestInterval:
    def test_length(self):
        assert Interval(3, 10).length == 7

    def test_invalid_order_rejected_at_tracker(self):
        # Interval itself is an unvalidated NamedTuple (hot-path construction);
        # the boundary that accepts untrusted endpoints is BusyTracker.add.
        with pytest.raises(ValueError):
            BusyTracker("fu").add(5, 2)

    def test_overlap(self):
        assert Interval(0, 10).overlaps(Interval(9, 12))
        assert not Interval(0, 10).overlaps(Interval(10, 12))

    def test_contains_is_half_open(self):
        iv = Interval(5, 8)
        assert iv.contains(5) and iv.contains(7)
        assert not iv.contains(8)


class TestMerge:
    def test_merge_disjoint(self):
        merged = merge_intervals([Interval(0, 2), Interval(5, 7)])
        assert merged == [Interval(0, 2), Interval(5, 7)]

    def test_merge_overlapping(self):
        merged = merge_intervals([Interval(0, 5), Interval(3, 9)])
        assert merged == [Interval(0, 9)]

    def test_merge_adjacent(self):
        merged = merge_intervals([Interval(0, 5), Interval(5, 9)])
        assert merged == [Interval(0, 9)]

    def test_zero_length_dropped(self):
        assert merge_intervals([Interval(4, 4)]) == []

    def test_total_busy_counts_overlap_once(self):
        assert total_busy([Interval(0, 10), Interval(5, 15)]) == 15

    @given(st.lists(st.tuples(st.integers(0, 200), st.integers(0, 50)), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_merge_properties(self, raw):
        intervals = [Interval(start, start + length) for start, length in raw]
        merged = merge_intervals(intervals)
        # merged intervals are sorted, disjoint and non-empty
        for earlier, later in zip(merged, merged[1:], strict=False):
            assert earlier.end < later.start
        assert all(iv.length > 0 for iv in merged)
        # coverage is preserved
        covered = set()
        for iv in intervals:
            covered.update(range(iv.start, iv.end))
        merged_covered = set()
        for iv in merged:
            merged_covered.update(range(iv.start, iv.end))
        assert covered == merged_covered


class TestBusyTracker:
    def test_busy_cycles(self):
        tracker = BusyTracker("fu")
        tracker.add(0, 10)
        tracker.add(20, 25)
        assert tracker.busy_cycles() == 15

    def test_extending_last_interval(self):
        tracker = BusyTracker()
        tracker.add(0, 10)
        tracker.add(5, 15)
        assert tracker.busy_cycles() == 15

    def test_zero_length_ignored(self):
        tracker = BusyTracker()
        tracker.add(5, 5)
        assert tracker.busy_cycles() == 0
        assert len(tracker) == 0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            BusyTracker().add(10, 4)

    def test_busy_at(self):
        tracker = BusyTracker()
        tracker.add(3, 6)
        assert tracker.busy_at(3) and tracker.busy_at(5)
        assert not tracker.busy_at(6)

    def test_last_end(self):
        tracker = BusyTracker()
        assert tracker.last_end() == 0
        tracker.add(2, 9)
        assert tracker.last_end() == 9

    @given(st.lists(st.tuples(st.integers(0, 300), st.integers(1, 40)), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_busy_cycles_matches_set_cover(self, raw):
        tracker = BusyTracker()
        covered = set()
        for start, length in raw:
            tracker.add(start, start + length)
            covered.update(range(start, start + length))
        assert tracker.busy_cycles() == len(covered)


class TestStateBreakdown:
    def test_two_resources(self):
        a = BusyTracker("a")
        b = BusyTracker("b")
        a.add(0, 10)
        b.add(5, 15)
        counts = state_breakdown([a, b], 20)
        assert counts[(True, False)] == 5    # a only: cycles 0-5
        assert counts[(True, True)] == 5     # both: 5-10
        assert counts[(False, True)] == 5    # b only: 10-15
        assert counts[(False, False)] == 5   # idle: 15-20
        assert sum(counts.values()) == 20

    def test_total_always_matches_cycles(self):
        a = BusyTracker()
        a.add(3, 7)
        counts = state_breakdown([a], 50)
        assert sum(counts.values()) == 50

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            state_breakdown([BusyTracker()], -1)

    @given(
        st.lists(
            st.lists(st.tuples(st.integers(0, 100), st.integers(1, 20)), max_size=15),
            min_size=1,
            max_size=3,
        ),
        st.integers(1, 150),
    )
    @settings(max_examples=50, deadline=None)
    def test_breakdown_partitions_time(self, resources, total):
        trackers = []
        for spec in resources:
            tracker = BusyTracker()
            for start, length in spec:
                tracker.add(start, start + length)
            trackers.append(tracker)
        counts = state_breakdown(trackers, total)
        assert sum(counts.values()) == total
