"""The static analyzer (`repro check`, :mod:`repro.checks`).

Each rule family is exercised against a deliberately broken toy
component, pinned to rule id and line; the whole-repository-clean
assertion at the end is the tier-1 gate the CI ``check`` job mirrors.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.checks import (
    DEFAULT_PATHS,
    USAGE_ERROR,
    CheckPass,
    Finding,
    exit_code_for,
    register_pass,
    registered_passes,
    run_checks,
)
from repro.checks.runner import main as checks_main

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKDATA = REPO_ROOT / "tests" / "checkdata"


def write_fixture(tmp_path, source: str) -> Path:
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent(source))
    return path


def findings_for(tmp_path, source: str) -> list[Finding]:
    return run_checks([write_fixture(tmp_path, source)])


# ---------------------------------------------------------------------------
# rule families, each demonstrated on a seeded-broken component
# ---------------------------------------------------------------------------


MISSING_STATE = """\
    class Counter:
        def __init__(self):
            self.ticks = 0
            self.drops = 0

        def bump(self):
            self.ticks += 1
            self.drops += 1

        def snapshot(self):
            return {"ticks": self.ticks}

        def restore(self, state):
            self.ticks = state["ticks"]

        def reset(self):
            self.ticks = 0
    """


class TestStateCoverage:
    def test_missing_snapshot_key_is_flagged(self, tmp_path):
        findings = findings_for(tmp_path, MISSING_STATE)
        assert [f.rule for f in findings] == ["state-coverage"]
        finding = findings[0]
        # reported on the __init__ assignment of the drifting attribute
        assert finding.line == 4
        assert "self.drops" in finding.message
        assert "snapshot" in finding.message
        assert finding.hint

    def test_covered_attribute_is_clean(self, tmp_path):
        covered = """\
            class Counter:
                def __init__(self):
                    self.ticks = 0
                    self.drops = 0

                def bump(self):
                    self.ticks += 1
                    self.drops += 1

                def snapshot(self):
                    return {"ticks": self.ticks, "drops": self.drops}

                def restore(self, state):
                    self.ticks = state["ticks"]
                    self.drops = state["drops"]

                def reset(self):
                    self.ticks = 0
                    self.drops = 0
            """
        assert findings_for(tmp_path, covered) == []

    def test_helper_closure_counts_as_coverage(self, tmp_path):
        # snapshot/restore/reset delegating through a self-method still
        # covers the attributes the helper touches (all_tables() pattern)
        delegating = """\
            class Tables:
                def __init__(self):
                    self.left = []
                    self.right = []

                def grow(self):
                    self.left.append(1)
                    self.right.append(2)

                def all_tables(self):
                    return (self.left, self.right)

                def snapshot(self):
                    return {"tables": [list(t) for t in self.all_tables()]}

                def restore(self, state):
                    for table, stored in zip(self.all_tables(), state["tables"]):
                        table[:] = stored

                def reset(self):
                    for table in self.all_tables():
                        table[:] = []
            """
        assert findings_for(tmp_path, delegating) == []

    def test_exit_code_bit(self, tmp_path):
        fixture = write_fixture(tmp_path, MISSING_STATE)
        assert checks_main([str(fixture)]) == 1

    def test_suppression_with_reason_silences(self, tmp_path):
        suppressed = MISSING_STATE.replace(
            "self.drops = 0",
            "self.drops = 0  # check: ignore[state-coverage] scratch tally, never read",
            1,
        )
        assert findings_for(tmp_path, suppressed) == []

    def test_standalone_suppression_covers_next_line(self, tmp_path):
        suppressed = MISSING_STATE.replace(
            "        self.drops = 0",
            "        # check: ignore[state-coverage] scratch tally, never read\n"
            "            self.drops = 0",
            1,
        )
        assert findings_for(tmp_path, suppressed) == []

    def test_suppression_without_reason_is_malformed(self, tmp_path):
        bad = MISSING_STATE.replace(
            "self.drops = 0",
            "self.drops = 0  # check: ignore[state-coverage]",
            1,
        )
        findings = findings_for(tmp_path, bad)
        rules = sorted(f.rule for f in findings)
        # the bare suppression does not suppress, and is itself a finding
        assert rules == ["malformed-suppression", "state-coverage"]

    def test_suppression_with_unknown_rule_is_malformed(self, tmp_path):
        bad = MISSING_STATE.replace(
            "self.drops = 0",
            "self.drops = 0  # check: ignore[no-such-rule] because",
            1,
        )
        findings = findings_for(tmp_path, bad)
        assert "malformed-suppression" in {f.rule for f in findings}


ASYMMETRIC = """\
    class Pipe:
        def __init__(self):
            self.depth = 0
            self.width = 0

        def stretch(self):
            self.depth += 1
            self.width += 1

        def snapshot(self):
            return {"depth": self.depth, "width": self.width}

        def restore(self, state):
            self.depth = state["depth"]
            self.width = state["breadth"]

        def reset(self):
            self.depth = 0
            self.width = 0
    """


class TestSnapshotSymmetry:
    def test_key_mismatch_is_flagged_both_ways(self, tmp_path):
        findings = findings_for(tmp_path, ASYMMETRIC)
        symmetry = [f for f in findings if f.rule == "snapshot-symmetry"]
        messages = sorted(f.message for f in symmetry)
        assert len(symmetry) == 2
        assert "snapshot writes key 'width'" in messages[1]
        assert "restore reads key 'breadth'" in messages[0]
        # anchored on the snapshot / restore definitions
        assert {f.line for f in symmetry} == {10, 13}

    def test_exit_code_bit(self, tmp_path):
        fixture = write_fixture(tmp_path, ASYMMETRIC)
        assert checks_main([str(fixture)]) == 2

    def test_dynamic_snapshot_is_skipped(self, tmp_path):
        dynamic = """\
            class Bag:
                def __init__(self):
                    self.items = {}

                def put(self, key, value):
                    self.items[key] = value

                def snapshot(self):
                    return {key: value for key, value in sorted(self.items.items())}

                def restore(self, state):
                    self.items = dict(state)

                def reset(self):
                    self.items = {}
            """
        assert findings_for(tmp_path, dynamic) == []


MUTATING_DIGEST = """\
    class Table:
        def __init__(self):
            self.entries = []
            self.digests = 0

        def push(self, item):
            self.entries.append(item)

        def snapshot(self):
            return {"entries": list(self.entries), "digests": self.digests}

        def restore(self, state):
            self.entries = list(state["entries"])
            self.digests = int(state["digests"])

        def reset(self):
            self.entries = []
            self.digests = 0

        def digest(self):
            self.digests += 1
            return str(self.snapshot())
    """


class TestDigestPurity:
    def test_mutating_digest_is_flagged(self, tmp_path):
        findings = findings_for(tmp_path, MUTATING_DIGEST)
        assert [f.rule for f in findings] == ["digest-purity"]
        finding = findings[0]
        assert finding.line == 21
        assert "Table.digest" in finding.message
        assert "self.digests" in finding.message

    def test_digest_calling_restore_is_flagged(self, tmp_path):
        source = """\
            class Clock:
                def __init__(self):
                    self.now = 0

                def tick(self):
                    self.now += 1

                def snapshot(self):
                    return {"now": self.now}

                def restore(self, state):
                    self.now = state["now"]

                def reset(self):
                    self.now = 0

                def digest(self):
                    self.restore(self.snapshot())
                    return str(self.now)
            """
        findings = findings_for(tmp_path, source)
        assert [f.rule for f in findings] == ["digest-purity"]
        assert "self.restore()" in findings[0].message

    def test_exit_code_bit(self, tmp_path):
        fixture = write_fixture(tmp_path, MUTATING_DIGEST)
        assert checks_main([str(fixture)]) == 4


SET_ITERATION = """\
    class Scheduler:
        def __init__(self):
            self.waiting: set[int] = set()

        def admit(self, item):
            self.waiting.add(item)

        def step(self):
            total = 0
            for item in self.waiting:
                total += item
            return total

        def snapshot(self):
            return {"waiting": sorted(self.waiting)}

        def restore(self, state):
            self.waiting = set(state["waiting"])

        def reset(self):
            self.waiting = set()
    """


class TestDeterminism:
    def test_set_iteration_in_step_method(self, tmp_path):
        findings = findings_for(tmp_path, SET_ITERATION)
        assert [f.rule for f in findings] == ["determinism"]
        finding = findings[0]
        assert finding.line == 10
        assert "self.waiting" in finding.message

    def test_sorted_iteration_is_clean(self, tmp_path):
        fixed = SET_ITERATION.replace(
            "for item in self.waiting:", "for item in sorted(self.waiting):"
        )
        assert findings_for(tmp_path, fixed) == []

    def test_exit_code_bit(self, tmp_path):
        fixture = write_fixture(tmp_path, SET_ITERATION)
        assert checks_main([str(fixture)]) == 8

    def test_ambient_state_lints(self, tmp_path):
        source = """\
            import os
            import random

            def seed():
                key = os.environ.get("SEED", "0")
                return id(key) + hash(key) + random.random()

            def drain(table):
                return table.popitem()

            def total(values: set):
                return sum({1.0, 2.0})
            """
        findings = findings_for(tmp_path, source)
        assert all(f.rule == "determinism" for f in findings)
        text = "\n".join(f.message for f in findings)
        for marker in ("random", "os.environ", "popitem", "id()", "hash()", "sum()"):
            assert marker in text, f"expected a finding mentioning {marker}"


# ---------------------------------------------------------------------------
# CLI, report formats, exit-code model
# ---------------------------------------------------------------------------


class TestCli:
    def test_repro_check_verb(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        fixture = write_fixture(tmp_path, MISSING_STATE)
        code = cli_main(["check", str(fixture), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["exit_code"] == 1
        assert [f["rule"] for f in payload["findings"]] == ["state-coverage"]
        assert payload["findings"][0]["line"] == 4

    def test_module_entry_point_clean_run(self, tmp_path, capsys):
        clean = write_fixture(tmp_path, "x = 1\n")
        assert checks_main([str(clean)]) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_missing_path_is_a_usage_error(self, tmp_path, capsys):
        # 255: outside the rule-bit space the families own (1..128)
        assert checks_main([str(tmp_path / "nope.py")]) == USAGE_ERROR
        assert USAGE_ERROR == 255

    def test_jobs_flag_does_not_change_findings(self, capsys):
        serial = checks_main([str(CHECKDATA), "--jobs", "1", "--format", "json"])
        serial_payload = json.loads(capsys.readouterr().out)
        threaded = checks_main([str(CHECKDATA), "--jobs", "4", "--format", "json"])
        threaded_payload = json.loads(capsys.readouterr().out)
        assert serial == threaded == 16 | 32 | 64 | 128
        assert serial_payload["findings"] == threaded_payload["findings"]

    def test_json_report_carries_the_rules_table(self, tmp_path, capsys):
        clean = write_fixture(tmp_path, "x = 1\n")
        assert checks_main([str(clean), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["exit_code"] == 0
        bits = {rule: entry["bit"] for rule, entry in payload["rules"].items()}
        assert bits == {
            "state-coverage": 1,
            "snapshot-symmetry": 2,
            "digest-purity": 4,
            "determinism": 8,
            "malformed-suppression": 16,
            "envelope-contract": 16,  # shares the hygiene bit: space is full
            "kernel-parity": 32,
            "ambient-effects": 64,
            "fleet-protocol": 128,
        }

    def test_exit_code_accumulates_bits(self):
        findings = [
            Finding(file="f", line=1, rule="state-coverage", message="m"),
            Finding(file="f", line=2, rule="digest-purity", message="m"),
        ]
        assert exit_code_for(findings) == 5


# ---------------------------------------------------------------------------
# the pass registry
# ---------------------------------------------------------------------------


def _noop_pass(**overrides) -> CheckPass:
    spec = dict(
        rule="x", bit=32, summary="s", scope="module", run=lambda module: []
    )
    spec.update(overrides)
    return CheckPass(**spec)


class TestPassRegistry:
    def test_families_registered_in_bit_order(self):
        passes = registered_passes()
        assert [p.bit for p in passes] == sorted(p.bit for p in passes)
        assert {p.rule: p.bit for p in passes} == {
            "state-coverage": 1,
            "snapshot-symmetry": 2,
            "digest-purity": 4,
            "determinism": 8,
            "envelope-contract": 16,
            "kernel-parity": 32,
            "ambient-effects": 64,
            "fleet-protocol": 128,
        }

    def test_register_rejects_multi_bit_codes(self):
        with pytest.raises(ValueError, match="not a single bit"):
            register_pass(_noop_pass(bit=3))

    def test_register_rejects_bits_beyond_the_exit_code(self):
        with pytest.raises(ValueError, match="exceeds"):
            register_pass(_noop_pass(bit=256))

    def test_register_rejects_allocated_bits(self):
        with pytest.raises(ValueError, match="collides"):
            register_pass(_noop_pass(bit=32))

    def test_register_rejects_duplicate_rule_ids(self):
        with pytest.raises(ValueError, match="already registered"):
            register_pass(_noop_pass(rule="determinism", bit=8))

    def test_register_is_idempotent_per_identical_pass(self):
        existing = next(
            p for p in registered_passes() if p.rule == "determinism"
        )
        assert register_pass(existing) is existing

    def test_unknown_scope_is_rejected_at_construction(self):
        with pytest.raises(ValueError, match="scope"):
            _noop_pass(scope="file")

    def test_third_party_pass_plugs_in_with_a_shared_bit(self, tmp_path):
        from repro.checks import model as check_model

        custom = register_pass(
            _noop_pass(
                rule="no-todo",
                bit=64,
                summary="third-party demo pass",
                run=lambda module: [
                    Finding(
                        file=module.display,
                        line=1,
                        rule="no-todo",
                        message="flagged",
                    )
                ],
                shares_bit=True,
            )
        )
        try:
            fixture = write_fixture(tmp_path, "x = 1\n")
            findings = run_checks([fixture])
            assert [f.rule for f in findings] == [custom.rule]
            # piggybacks on the ambient-effects bit
            assert exit_code_for(findings) == 64
            # inline suppressions work for third-party rules too
            fixture.write_text(
                "x = 1  # check: ignore[no-todo] demo exemption\n"
            )
            assert run_checks([fixture]) == []
        finally:
            check_model._PASSES.pop("no-todo", None)
            check_model.RULES.pop("no-todo", None)


# ---------------------------------------------------------------------------
# kernel-parity: scalar DISPATCH vs batched segment branches
# ---------------------------------------------------------------------------

#: the modules that define the three real machine/stepper pairings (plus
#: the InstrKind enum and K_* kind codes they share)
KERNEL_SOURCES = (
    "src/repro/isa/opcodes.py",
    "src/repro/machine/batched.py",
    "src/repro/refsim/machine.py",
    "src/repro/refsim/batched.py",
)


def parity_pass() -> CheckPass:
    return next(p for p in registered_passes() if p.rule == "kernel-parity")


def copy_kernel_sources(tmp_path, mutate=None) -> list[Path]:
    copies = []
    for rel in KERNEL_SOURCES:
        source = (REPO_ROOT / rel).read_text()
        if mutate is not None:
            source = mutate(rel, source)
        dest = tmp_path / rel.replace("/", "_")
        dest.write_text(source)
        copies.append(dest)
    return copies


class TestKernelParity:
    def test_fires_on_seeded_fixture(self):
        findings = run_checks([CHECKDATA / "parity_drift.py"], root=REPO_ROOT)
        assert [f.rule for f in findings] == ["kernel-parity"]
        assert "InstrKind.VECTOR_LOAD" in findings[0].message
        assert "kc == K_VECTOR_LOAD" in findings[0].message
        assert exit_code_for(findings) == 32

    def test_exit_code_bit(self):
        assert checks_main([str(CHECKDATA / "parity_drift.py")]) == 32

    def test_real_kernels_prove_dispatch_coverage(self):
        from repro.checks.astutil import collect_files, load_module
        from repro.checks.contract import Project
        from repro.checks.parity import stepper_bindings

        roots = ("src/repro/isa", "src/repro/machine", "src/repro/ooo",
                 "src/repro/refsim")
        files = collect_files([REPO_ROOT / path for path in roots])
        modules = [load_module(file, root=REPO_ROOT) for file in files]
        bindings = {
            b.machine: b for b in stepper_bindings(Project.build(modules))
        }
        assert set(bindings) == {"_OOORun", "_InOrderRun", "_ReferenceRun"}
        for binding in bindings.values():
            assert binding.dispatch is not None, binding.machine
            assert binding.dispatch.handlers, binding.machine
            missing = set(binding.dispatch.handlers) - set(
                binding.coverage.kinds
            )
            assert not missing, (binding.machine, missing)
            assert binding.coverage.has_default, binding.machine
            assert not binding.coverage.unresolved, binding.machine

    def test_removing_a_stepper_branch_is_caught(self, tmp_path):
        # the acceptance scenario: delete the batched kernel's K_BRANCH
        # arm and the pass must pin the uncovered DISPATCH entry
        def drop_branch_arm(rel: str, source: str) -> str:
            if rel.endswith("refsim/batched.py"):
                assert "kc == K_BRANCH" in source
                return source.replace("kc == K_BRANCH", "False")
            return source

        mutated = copy_kernel_sources(tmp_path, mutate=drop_branch_arm)
        findings = run_checks(mutated, passes=[parity_pass()])
        assert findings, "removed branch went undetected"
        assert all(f.rule == "kernel-parity" for f in findings)
        assert any(
            "InstrKind.BRANCH" in f.message and "_step_reference" in f.message
            for f in findings
        ), [f.message for f in findings]
        assert exit_code_for(findings) == 32

    def test_unmutated_kernels_are_clean(self, tmp_path):
        copies = copy_kernel_sources(tmp_path)
        assert run_checks(copies, passes=[parity_pass()]) == []


# ---------------------------------------------------------------------------
# ambient-effects: transitive purity of simulation entry points
# ---------------------------------------------------------------------------


class TestAmbientEffects:
    def test_fires_on_seeded_fixture(self):
        findings = run_checks([CHECKDATA / "effects_leak.py"], root=REPO_ROOT)
        assert {f.rule for f in findings} == {"ambient-effects"}
        assert len(findings) == 2
        messages = sorted(f.message for f in findings)
        assert "os.getpid()" in messages[0]
        assert "uuid.uuid4()" in messages[1]
        for message in messages:
            # findings carry the full call path from the entry point
            assert "run_slice -> _trace_label -> _worker_identity" in message
        assert exit_code_for(findings) == 64

    def test_exit_code_bit(self):
        assert checks_main([str(CHECKDATA / "effects_leak.py")]) == 64

    def test_unreachable_effect_is_clean(self, tmp_path):
        source = """\
            import uuid

            def fresh_name():
                return uuid.uuid4().hex

            def run_slice(machine, budget):
                for _ in range(budget):
                    machine.step()
                return machine.digest()
            """
        assert findings_for(tmp_path, source) == []

    def test_method_entry_points_are_roots(self, tmp_path):
        source = """\
            import uuid

            class Port:
                def digest(self):
                    return self._tag()

                def _tag(self):
                    return uuid.uuid4().hex
            """
        findings = findings_for(tmp_path, source)
        assert [f.rule for f in findings] == ["ambient-effects"]
        assert "Port.digest -> Port._tag" in findings[0].message

    def test_suppression_with_reason_silences(self, tmp_path):
        source = """\
            import uuid

            def run_slice(machine):
                # check: ignore[ambient-effects] trace tag is diagnostic-only
                return uuid.uuid4().hex
            """
        assert findings_for(tmp_path, source) == []


# ---------------------------------------------------------------------------
# envelope-contract: absorb ⇒ envelope, and envelope is read-only
# ---------------------------------------------------------------------------


class TestEnvelopeContract:
    def test_fires_on_seeded_fixture(self):
        findings = run_checks(
            [CHECKDATA / "envelope_defect.py"], root=REPO_ROOT
        )
        assert {f.rule for f in findings} == {"envelope-contract"}
        assert len(findings) == 3
        text = "\n".join(f.message for f in findings)
        assert "LeakyStation implements 'absorb'" in text
        assert "no concrete 'envelope'" in text
        assert "NoisyStation.envelope mutates 'self.probed'" in text
        assert "NoisyStation.envelope reaches os.getpid()" in text
        assert exit_code_for(findings) == 16

    def test_exit_code_bit(self):
        assert checks_main([str(CHECKDATA / "envelope_defect.py")]) == 16

    def test_inherited_envelope_satisfies_the_pairing(self, tmp_path):
        source = """\
            class Enveloped:
                def envelope(self, anchor):
                    return []

            class Station(Enveloped):
                def absorb(self, state, delta):
                    self.pending = list(state)
            """
        assert findings_for(tmp_path, source) == []

    def test_abstract_envelope_does_not_satisfy_the_pairing(self, tmp_path):
        source = """\
            class Base:
                def envelope(self, anchor):
                    raise NotImplementedError

            class Station(Base):
                def absorb(self, state, delta):
                    self.pending = list(state)
            """
        findings = findings_for(tmp_path, source)
        assert [f.rule for f in findings] == ["envelope-contract"]
        assert "Station" in findings[0].message

    def test_pure_envelope_is_clean(self, tmp_path):
        source = """\
            class Station:
                def absorb(self, state, delta):
                    self.pending = [cycle + delta for cycle in state]

                def envelope(self, anchor):
                    return sorted(
                        cycle - anchor
                        for cycle in self.pending
                        if cycle > anchor
                    )
            """
        assert findings_for(tmp_path, source) == []

    def test_suppression_with_reason_silences(self, tmp_path):
        source = """\
            class Station:
                # check: ignore[envelope-contract] timeless component
                def absorb(self, state, delta):
                    self.count = self.count + state["count"]
            """
        findings = findings_for(tmp_path, source)
        assert findings == []


# ---------------------------------------------------------------------------
# fleet-protocol: lease-queue coordination lints
# ---------------------------------------------------------------------------


class TestFleetProtocol:
    def test_fires_on_seeded_fixture(self):
        findings = run_checks(
            [CHECKDATA / "fleet_bad_queue.py"], root=REPO_ROOT
        )
        assert [f.rule for f in findings] == ["fleet-protocol"] * 4
        text = "\n".join(f.message for f in findings)
        assert "hardcoded queue-prefix key" in text
        assert "f-string splicing self.prefix" in text
        assert "calls time.time() directly" in text
        assert "thread-shared state 'self.beats'" in text
        assert exit_code_for(findings) == 128

    def test_exit_code_bit(self):
        assert checks_main([str(CHECKDATA / "fleet_bad_queue.py")]) == 128

    def test_scope_is_path_based(self, tmp_path):
        # the same defects outside the fleet tree: fleet-protocol stays
        # silent and the determinism family owns the terrain instead
        # (tmp_path inherits the test name, so "fleet" must not appear in it)
        copy = tmp_path / "plain_queue.py"
        copy.write_text((CHECKDATA / "fleet_bad_queue.py").read_text())
        rules = {f.rule for f in run_checks([copy])}
        assert "fleet-protocol" not in rules
        assert "determinism" in rules

    def test_key_helpers_and_injected_clock_are_clean(self, tmp_path):
        source = """\
            class Queue:
                def __init__(self, store, prefix, clock):
                    self.store = store
                    self.prefix = prefix
                    self.clock = clock

                def _task_key(self, task_id):
                    return f"{self.prefix}/tasks/{task_id}.json"

                def put(self, task_id, payload):
                    now = self.clock()
                    self.store.put(self._task_key(task_id), payload)
                    return now
            """
        path = tmp_path / "fleet_fixture.py"
        path.write_text(textwrap.dedent(source))
        assert run_checks([path]) == []


# ---------------------------------------------------------------------------
# the repository itself is clean
# ---------------------------------------------------------------------------


class TestRepositoryIsClean:
    def test_default_paths_exist(self):
        for path in DEFAULT_PATHS:
            assert (REPO_ROOT / path).is_dir(), path

    def test_simulation_packages_are_clean(self):
        findings = run_checks(root=REPO_ROOT)
        rendered = "\n".join(f.render() for f in findings)
        assert findings == [], f"repo has check findings:\n{rendered}"

    def test_examples_are_clean(self):
        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert examples, "examples directory is empty"
        findings = run_checks(examples, root=REPO_ROOT)
        rendered = "\n".join(f.render() for f in findings)
        assert findings == [], f"examples have check findings:\n{rendered}"
