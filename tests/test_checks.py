"""The static analyzer (`repro check`, :mod:`repro.checks`).

Each rule family is exercised against a deliberately broken toy
component, pinned to rule id and line; the whole-repository-clean
assertion at the end is the tier-1 gate the CI ``check`` job mirrors.
"""

import json
import textwrap
from pathlib import Path

from repro.checks import DEFAULT_PATHS, Finding, exit_code_for, run_checks
from repro.checks.runner import main as checks_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_fixture(tmp_path, source: str) -> Path:
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent(source))
    return path


def findings_for(tmp_path, source: str) -> list[Finding]:
    return run_checks([write_fixture(tmp_path, source)])


# ---------------------------------------------------------------------------
# rule families, each demonstrated on a seeded-broken component
# ---------------------------------------------------------------------------


MISSING_STATE = """\
    class Counter:
        def __init__(self):
            self.ticks = 0
            self.drops = 0

        def bump(self):
            self.ticks += 1
            self.drops += 1

        def snapshot(self):
            return {"ticks": self.ticks}

        def restore(self, state):
            self.ticks = state["ticks"]

        def reset(self):
            self.ticks = 0
    """


class TestStateCoverage:
    def test_missing_snapshot_key_is_flagged(self, tmp_path):
        findings = findings_for(tmp_path, MISSING_STATE)
        assert [f.rule for f in findings] == ["state-coverage"]
        finding = findings[0]
        # reported on the __init__ assignment of the drifting attribute
        assert finding.line == 4
        assert "self.drops" in finding.message
        assert "snapshot" in finding.message
        assert finding.hint

    def test_covered_attribute_is_clean(self, tmp_path):
        covered = """\
            class Counter:
                def __init__(self):
                    self.ticks = 0
                    self.drops = 0

                def bump(self):
                    self.ticks += 1
                    self.drops += 1

                def snapshot(self):
                    return {"ticks": self.ticks, "drops": self.drops}

                def restore(self, state):
                    self.ticks = state["ticks"]
                    self.drops = state["drops"]

                def reset(self):
                    self.ticks = 0
                    self.drops = 0
            """
        assert findings_for(tmp_path, covered) == []

    def test_helper_closure_counts_as_coverage(self, tmp_path):
        # snapshot/restore/reset delegating through a self-method still
        # covers the attributes the helper touches (all_tables() pattern)
        delegating = """\
            class Tables:
                def __init__(self):
                    self.left = []
                    self.right = []

                def grow(self):
                    self.left.append(1)
                    self.right.append(2)

                def all_tables(self):
                    return (self.left, self.right)

                def snapshot(self):
                    return {"tables": [list(t) for t in self.all_tables()]}

                def restore(self, state):
                    for table, stored in zip(self.all_tables(), state["tables"]):
                        table[:] = stored

                def reset(self):
                    for table in self.all_tables():
                        table[:] = []
            """
        assert findings_for(tmp_path, delegating) == []

    def test_exit_code_bit(self, tmp_path):
        fixture = write_fixture(tmp_path, MISSING_STATE)
        assert checks_main([str(fixture)]) == 1

    def test_suppression_with_reason_silences(self, tmp_path):
        suppressed = MISSING_STATE.replace(
            "self.drops = 0",
            "self.drops = 0  # check: ignore[state-coverage] scratch tally, never read",
            1,
        )
        assert findings_for(tmp_path, suppressed) == []

    def test_standalone_suppression_covers_next_line(self, tmp_path):
        suppressed = MISSING_STATE.replace(
            "        self.drops = 0",
            "        # check: ignore[state-coverage] scratch tally, never read\n"
            "            self.drops = 0",
            1,
        )
        assert findings_for(tmp_path, suppressed) == []

    def test_suppression_without_reason_is_malformed(self, tmp_path):
        bad = MISSING_STATE.replace(
            "self.drops = 0",
            "self.drops = 0  # check: ignore[state-coverage]",
            1,
        )
        findings = findings_for(tmp_path, bad)
        rules = sorted(f.rule for f in findings)
        # the bare suppression does not suppress, and is itself a finding
        assert rules == ["malformed-suppression", "state-coverage"]

    def test_suppression_with_unknown_rule_is_malformed(self, tmp_path):
        bad = MISSING_STATE.replace(
            "self.drops = 0",
            "self.drops = 0  # check: ignore[no-such-rule] because",
            1,
        )
        findings = findings_for(tmp_path, bad)
        assert "malformed-suppression" in {f.rule for f in findings}


ASYMMETRIC = """\
    class Pipe:
        def __init__(self):
            self.depth = 0
            self.width = 0

        def stretch(self):
            self.depth += 1
            self.width += 1

        def snapshot(self):
            return {"depth": self.depth, "width": self.width}

        def restore(self, state):
            self.depth = state["depth"]
            self.width = state["breadth"]

        def reset(self):
            self.depth = 0
            self.width = 0
    """


class TestSnapshotSymmetry:
    def test_key_mismatch_is_flagged_both_ways(self, tmp_path):
        findings = findings_for(tmp_path, ASYMMETRIC)
        symmetry = [f for f in findings if f.rule == "snapshot-symmetry"]
        messages = sorted(f.message for f in symmetry)
        assert len(symmetry) == 2
        assert "snapshot writes key 'width'" in messages[1]
        assert "restore reads key 'breadth'" in messages[0]
        # anchored on the snapshot / restore definitions
        assert {f.line for f in symmetry} == {10, 13}

    def test_exit_code_bit(self, tmp_path):
        fixture = write_fixture(tmp_path, ASYMMETRIC)
        assert checks_main([str(fixture)]) == 2

    def test_dynamic_snapshot_is_skipped(self, tmp_path):
        dynamic = """\
            class Bag:
                def __init__(self):
                    self.items = {}

                def put(self, key, value):
                    self.items[key] = value

                def snapshot(self):
                    return {key: value for key, value in sorted(self.items.items())}

                def restore(self, state):
                    self.items = dict(state)

                def reset(self):
                    self.items = {}
            """
        assert findings_for(tmp_path, dynamic) == []


MUTATING_DIGEST = """\
    class Table:
        def __init__(self):
            self.entries = []
            self.digests = 0

        def push(self, item):
            self.entries.append(item)

        def snapshot(self):
            return {"entries": list(self.entries), "digests": self.digests}

        def restore(self, state):
            self.entries = list(state["entries"])
            self.digests = int(state["digests"])

        def reset(self):
            self.entries = []
            self.digests = 0

        def digest(self):
            self.digests += 1
            return str(self.snapshot())
    """


class TestDigestPurity:
    def test_mutating_digest_is_flagged(self, tmp_path):
        findings = findings_for(tmp_path, MUTATING_DIGEST)
        assert [f.rule for f in findings] == ["digest-purity"]
        finding = findings[0]
        assert finding.line == 21
        assert "Table.digest" in finding.message
        assert "self.digests" in finding.message

    def test_digest_calling_restore_is_flagged(self, tmp_path):
        source = """\
            class Clock:
                def __init__(self):
                    self.now = 0

                def tick(self):
                    self.now += 1

                def snapshot(self):
                    return {"now": self.now}

                def restore(self, state):
                    self.now = state["now"]

                def reset(self):
                    self.now = 0

                def digest(self):
                    self.restore(self.snapshot())
                    return str(self.now)
            """
        findings = findings_for(tmp_path, source)
        assert [f.rule for f in findings] == ["digest-purity"]
        assert "self.restore()" in findings[0].message

    def test_exit_code_bit(self, tmp_path):
        fixture = write_fixture(tmp_path, MUTATING_DIGEST)
        assert checks_main([str(fixture)]) == 4


SET_ITERATION = """\
    class Scheduler:
        def __init__(self):
            self.waiting: set[int] = set()

        def admit(self, item):
            self.waiting.add(item)

        def step(self):
            total = 0
            for item in self.waiting:
                total += item
            return total

        def snapshot(self):
            return {"waiting": sorted(self.waiting)}

        def restore(self, state):
            self.waiting = set(state["waiting"])

        def reset(self):
            self.waiting = set()
    """


class TestDeterminism:
    def test_set_iteration_in_step_method(self, tmp_path):
        findings = findings_for(tmp_path, SET_ITERATION)
        assert [f.rule for f in findings] == ["determinism"]
        finding = findings[0]
        assert finding.line == 10
        assert "self.waiting" in finding.message

    def test_sorted_iteration_is_clean(self, tmp_path):
        fixed = SET_ITERATION.replace(
            "for item in self.waiting:", "for item in sorted(self.waiting):"
        )
        assert findings_for(tmp_path, fixed) == []

    def test_exit_code_bit(self, tmp_path):
        fixture = write_fixture(tmp_path, SET_ITERATION)
        assert checks_main([str(fixture)]) == 8

    def test_ambient_state_lints(self, tmp_path):
        source = """\
            import os
            import random

            def seed():
                key = os.environ.get("SEED", "0")
                return id(key) + hash(key) + random.random()

            def drain(table):
                return table.popitem()

            def total(values: set):
                return sum({1.0, 2.0})
            """
        findings = findings_for(tmp_path, source)
        assert all(f.rule == "determinism" for f in findings)
        text = "\n".join(f.message for f in findings)
        for marker in ("random", "os.environ", "popitem", "id()", "hash()", "sum()"):
            assert marker in text, f"expected a finding mentioning {marker}"


# ---------------------------------------------------------------------------
# CLI, report formats, exit-code model
# ---------------------------------------------------------------------------


class TestCli:
    def test_repro_check_verb(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        fixture = write_fixture(tmp_path, MISSING_STATE)
        code = cli_main(["check", str(fixture), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["exit_code"] == 1
        assert [f["rule"] for f in payload["findings"]] == ["state-coverage"]
        assert payload["findings"][0]["line"] == 4

    def test_module_entry_point_clean_run(self, tmp_path, capsys):
        clean = write_fixture(tmp_path, "x = 1\n")
        assert checks_main([str(clean)]) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_missing_path_is_a_usage_error(self, tmp_path, capsys):
        assert checks_main([str(tmp_path / "nope.py")]) == 64

    def test_exit_code_accumulates_bits(self):
        findings = [
            Finding(file="f", line=1, rule="state-coverage", message="m"),
            Finding(file="f", line=2, rule="digest-purity", message="m"),
        ]
        assert exit_code_for(findings) == 5


# ---------------------------------------------------------------------------
# the repository itself is clean
# ---------------------------------------------------------------------------


class TestRepositoryIsClean:
    def test_default_paths_exist(self):
        for path in DEFAULT_PATHS:
            assert (REPO_ROOT / path).is_dir(), path

    def test_simulation_packages_are_clean(self):
        findings = run_checks(root=REPO_ROOT)
        rendered = "\n".join(f.render() for f in findings)
        assert findings == [], f"repo has check findings:\n{rendered}"

    def test_examples_are_clean(self):
        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert examples, "examples directory is empty"
        findings = run_checks(examples, root=REPO_ROOT)
        rendered = "\n".join(f.render() for f in findings)
        assert findings == [], f"examples have check findings:\n{rendered}"
