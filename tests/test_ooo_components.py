"""Unit tests for the OOOVA building blocks: rename, ROB, queues, predictor,
memory pipeline and load-elimination tags."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, SimulationError
from repro.isa.opcodes import Opcode
from repro.isa.registers import RegClass, areg, sreg, vreg
from repro.ooo.btb import BranchPredictor
from repro.ooo.loadelim import LoadEliminationUnit, MemoryTag, TagTable, tag_for
from repro.ooo.mempipe import MemoryPipeline
from repro.ooo.queues import IssueQueue, QueueKind, QueueSet, route_queue
from repro.ooo.rename import RegisterFileRenamer, RenameUnit
from repro.ooo.rob import ReorderBuffer
from repro.trace.records import DynInstr


class TestRenamer:
    def test_source_of_unwritten_register_is_stable(self):
        renamer = RegisterFileRenamer(RegClass.V, 16)
        first = renamer.source(vreg(3))
        assert renamer.source(vreg(3)) is first

    def test_rename_destination_changes_mapping(self):
        renamer = RegisterFileRenamer(RegClass.V, 16)
        old = renamer.source(vreg(0))
        result = renamer.rename_destination(vreg(0), earliest=10)
        assert result.previous is old
        assert renamer.source(vreg(0)) is result.phys
        assert result.phys is not old

    def test_allocation_stalls_when_free_list_drained(self):
        renamer = RegisterFileRenamer(RegClass.V, 9)
        for i in range(8):
            renamer.source(vreg(i))
        first = renamer.rename_destination(vreg(0), earliest=0)
        assert first.available_at == 0
        # Nothing has been released yet: the next rename must wait until the
        # previous destination's old mapping comes back at its commit time.
        renamer.release(first.previous, at_cycle=500)
        second = renamer.rename_destination(vreg(1), earliest=0)
        assert second.available_at == 500
        assert renamer.allocation_stalls == 1
        # The stall is charged in cycles actually waited, not per event.
        assert renamer.allocation_stall_cycles == 500

    def test_release_ignores_still_mapped_registers(self):
        renamer = RegisterFileRenamer(RegClass.V, 16)
        phys = renamer.source(vreg(0))
        renamer.release(phys, at_cycle=10)
        assert not renamer.is_free(phys)

    def test_remap_pulls_register_back_from_free_list(self):
        renamer = RegisterFileRenamer(RegClass.V, 16)
        renamer.source(vreg(0))
        result = renamer.rename_destination(vreg(0), earliest=0)
        renamer.release(result.previous, at_cycle=5)
        assert renamer.is_free(result.previous)
        renamer.remap(vreg(1), result.previous)
        assert not renamer.is_free(result.previous)
        assert renamer.source(vreg(1)) is result.previous

    def test_wrong_class_rejected(self):
        renamer = RegisterFileRenamer(RegClass.V, 16)
        with pytest.raises(SimulationError):
            renamer.source(areg(0))

    def test_rename_unit_routes_classes(self):
        unit = RenameUnit(64, 64, 16, 8)
        assert unit.source(areg(0)) is unit.file(RegClass.A).source(areg(0))
        assert unit.source(vreg(0)) is not unit.source(sreg(0))


class TestReorderBuffer:
    def test_commit_in_order(self):
        rob = ReorderBuffer(64, 4)
        first = rob.commit(100)
        second = rob.commit(50)
        assert second >= first

    def test_commit_bandwidth(self):
        rob = ReorderBuffer(64, 2)
        times = [rob.commit(0) for _ in range(6)]
        # at most two commits per cycle
        assert times == [0, 0, 1, 1, 2, 2]

    def test_allocation_stalls_when_full(self):
        rob = ReorderBuffer(4, 4)
        for _ in range(4):
            rob.allocate(0)
            rob.commit(100)
        granted = rob.allocate(0)
        assert granted >= 100
        assert rob.allocation_stalls >= 1
        # Cycles waited: the entry was requested at 0 and granted at 100.
        assert rob.allocation_stall_cycles == granted - 0

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            ReorderBuffer(0, 4)


class TestQueues:
    def test_admit_until_full(self):
        queue = IssueQueue(QueueKind.V, 2)
        assert queue.admit(0) == 0
        assert queue.admit(0) == 0
        queue.register_departure(50)
        queue.register_departure(60)
        # Third admission must wait for the earliest departure.
        assert queue.admit(0) == 50
        assert queue.full_stalls == 1
        # Cycles waited: requested at 0, granted at the departure time 50.
        assert queue.full_stall_cycles == 50

    def test_routing(self):
        vload = DynInstr(seq=0, opcode=Opcode.VLOAD, pc=0, dest=vreg(0), srcs=(areg(0),))
        vadd = DynInstr(seq=1, opcode=Opcode.VADD, pc=1, dest=vreg(0), srcs=(vreg(1),))
        branch = DynInstr(seq=2, opcode=Opcode.BR, pc=2, srcs=(areg(0),))
        addr = DynInstr(seq=3, opcode=Opcode.ADD, pc=3, dest=areg(0), srcs=(areg(0),))
        fscalar = DynInstr(seq=4, opcode=Opcode.FADD, pc=4, dest=sreg(0), srcs=(sreg(1),))
        assert route_queue(vload) is QueueKind.M
        assert route_queue(vadd) is QueueKind.V
        assert route_queue(branch) is QueueKind.A
        assert route_queue(addr) is QueueKind.A
        assert route_queue(fscalar) is QueueKind.S

    def test_queue_set(self):
        queues = QueueSet(16)
        instr = DynInstr(seq=0, opcode=Opcode.VADD, pc=0, dest=vreg(0), srcs=(vreg(1),))
        assert queues.queue_for(instr).kind is QueueKind.V
        assert queues.total_full_stalls == 0


class TestBranchPredictor:
    def _branch(self, pc, taken, seq=0):
        return DynInstr(seq=seq, opcode=Opcode.BR, pc=pc, srcs=(areg(0),), taken=taken)

    def test_counter_learns_a_loop(self):
        predictor = BranchPredictor()
        outcomes = [predictor.predict_and_update(self._branch(7, True, i)) for i in range(10)]
        assert all(outcomes[2:])

    def test_loop_exit_mispredicts(self):
        predictor = BranchPredictor()
        for i in range(8):
            predictor.predict_and_update(self._branch(7, True, i))
        assert not predictor.predict_and_update(self._branch(7, False, 9))

    def test_call_return_well_nested(self):
        predictor = BranchPredictor(ras_depth=8)
        call = DynInstr(seq=0, opcode=Opcode.CALL, pc=3, taken=True, is_call=True, target_pc=9)
        ret = DynInstr(seq=1, opcode=Opcode.RET, pc=9, taken=True, is_return=True)
        predictor.predict_and_update(call)
        assert predictor.predict_and_update(ret)

    def test_return_without_call_mispredicts(self):
        predictor = BranchPredictor()
        ret = DynInstr(seq=0, opcode=Opcode.RET, pc=9, taken=True, is_return=True)
        assert not predictor.predict_and_update(ret)

    def test_misprediction_rate(self):
        predictor = BranchPredictor()
        assert predictor.misprediction_rate == 0.0
        predictor.predict_and_update(self._branch(1, True))
        assert 0.0 <= predictor.misprediction_rate <= 1.0

    @given(st.lists(st.tuples(st.integers(0, 3), st.booleans()), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_predictor_never_crashes(self, stream):
        predictor = BranchPredictor()
        for seq, (pc, taken) in enumerate(stream):
            predictor.predict_and_update(self._branch(pc, taken, seq))
        assert predictor.predictions == len(stream)


class TestMemoryPipeline:
    def _access(self, seq, opcode, start, end):
        return DynInstr(seq=seq, opcode=opcode, pc=seq, region_start=start, region_end=end,
                        address=start, vl=8)

    def test_traverse_is_in_order(self):
        pipe = MemoryPipeline()
        assert pipe.traverse(0) == 3
        assert pipe.traverse(0) == 4

    def test_load_waits_for_overlapping_store(self):
        pipe = MemoryPipeline()
        store = self._access(0, Opcode.VSTORE, 100, 200)
        pipe.register_access(store, address_done=500)
        load = self._access(1, Opcode.VLOAD, 150, 180)
        assert pipe.dependence_ready(load, earliest=10) == 500

    def test_load_does_not_wait_for_disjoint_store(self):
        pipe = MemoryPipeline()
        pipe.register_access(self._access(0, Opcode.VSTORE, 100, 200), address_done=500)
        load = self._access(1, Opcode.VLOAD, 300, 400)
        assert pipe.dependence_ready(load, earliest=10) == 10

    def test_load_does_not_wait_for_older_load(self):
        pipe = MemoryPipeline()
        pipe.register_access(self._access(0, Opcode.VLOAD, 100, 200), address_done=500)
        load = self._access(1, Opcode.VLOAD, 100, 200)
        assert pipe.dependence_ready(load, earliest=10) == 10

    def test_store_waits_for_older_load_and_store(self):
        pipe = MemoryPipeline()
        pipe.register_access(self._access(0, Opcode.VLOAD, 100, 200), address_done=300)
        store = self._access(1, Opcode.VSTORE, 100, 200)
        assert pipe.dependence_ready(store, earliest=10) == 300


class TestLoadElimination:
    def _load(self, addr, vl=16, stride=8, opcode=Opcode.VLOAD):
        return DynInstr(seq=0, opcode=opcode, pc=0, vl=vl, stride=stride, address=addr,
                        region_start=addr, region_end=addr + (vl - 1) * stride + 8)

    def test_tag_for_vector_load(self):
        tag = tag_for(self._load(0x1000))
        assert tag == MemoryTag(0x1000, 0x1000 + 15 * 8 + 8, 16, 8)

    def test_exact_match_required(self):
        table = TagTable("V")
        table.set_tag(3, tag_for(self._load(0x1000)))
        assert table.find_exact(tag_for(self._load(0x1000))) == 3
        assert table.find_exact(tag_for(self._load(0x1000, vl=8))) is None
        assert table.find_exact(tag_for(self._load(0x1008))) is None

    def test_invalidate_overlapping(self):
        table = TagTable("V")
        table.set_tag(1, tag_for(self._load(0x1000)))
        table.set_tag(2, tag_for(self._load(0x2000)))
        count = table.invalidate_overlapping(0x1000, 0x1040)
        assert count == 1
        assert table.find_exact(tag_for(self._load(0x1000))) is None
        assert table.find_exact(tag_for(self._load(0x2000))) == 2

    def test_store_invalidates_other_tables_but_keeps_own_register(self):
        unit = LoadEliminationUnit()
        load = self._load(0x1000)
        unit.load_executed(load, phys_id=5, table=unit.vector_tags)
        scalar_store = DynInstr(seq=1, opcode=Opcode.STORE, pc=1, address=0x1000,
                                region_start=0x1000, region_end=0x1008)
        unit.store_executed(scalar_store, phys_id=2, table=unit.s_tags)
        # the vector tag overlapping the stored word is gone
        assert unit.vector_tags.find_exact(tag_for(load)) is None
        # the stored register's own tag exists in the scalar table
        assert unit.s_tags.get(2) is not None

    def test_try_eliminate(self):
        unit = LoadEliminationUnit()
        load = self._load(0x3000)
        assert unit.try_eliminate(load, unit.vector_tags) is None
        unit.load_executed(load, phys_id=7, table=unit.vector_tags)
        assert unit.try_eliminate(load, unit.vector_tags) == 7

    def test_invalidate_on_overwrite(self):
        table = TagTable("V")
        table.set_tag(4, tag_for(self._load(0x1000)))
        table.invalidate(4)
        assert len(table) == 0
        assert table.invalidations == 1
