"""Unit and property tests for register allocation and the compile driver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import ir
from repro.compiler.codegen import CodeGenerator, VirtReg, generate_code
from repro.compiler.pipeline import CompilationResult, compile_kernel
from repro.compiler.regalloc import allocate_registers
from repro.compiler.scheduler import SCHEDULING_POLICIES, schedule_code
from repro.common.errors import CompilationError
from repro.isa.opcodes import InstrKind, Opcode
from repro.isa.registers import RegClass, Register


def _wide_kernel(num_arrays: int, trip: int = 256) -> ir.Kernel:
    """A kernel that keeps roughly ``num_arrays`` vector values live at once.

    The first statement loads every array (the loads are CSEd inside the
    strip body) and the second statement consumes them in reverse order, so
    all of them stay live across the whole body.
    """
    arrays = [ir.Array(f"x{i}", trip) for i in range(num_arrays)]
    out = ir.Array("out", trip)
    out2 = ir.Array("out2", trip)

    def chain(refs):
        expr = refs[0].ref()
        for array in refs[1:]:
            expr = expr + array.ref() * 1.5
        return expr

    kernel = ir.Kernel(f"wide{num_arrays}")
    kernel.add(
        ir.VectorLoop(
            "loop",
            trip=trip,
            statements=(
                ir.VectorAssign(out.ref(), chain(arrays)),
                ir.VectorAssign(out2.ref(), chain(list(reversed(arrays)))),
            ),
        )
    )
    return kernel


def _all_instructions(program):
    for block in program.blocks:
        yield from block


class TestVectorAllocation:
    def test_narrow_kernel_has_no_vector_spills(self):
        result = compile_kernel(_wide_kernel(3))
        assert result.allocation.vector_spill_stores == 0
        assert result.allocation.vector_spill_loads == 0

    def test_wide_kernel_spills_vectors(self):
        result = compile_kernel(_wide_kernel(14))
        assert result.allocation.vector_spill_stores > 0
        assert result.allocation.vector_spill_loads > 0

    def test_spill_code_is_marked(self):
        result = compile_kernel(_wide_kernel(14))
        spills = [i for i in _all_instructions(result.program) if i.is_spill]
        assert spills
        assert all(i.opcode in (Opcode.VLOAD, Opcode.VSTORE, Opcode.LOAD, Opcode.STORE)
                   for i in spills)

    def test_no_virtual_registers_survive(self):
        result = compile_kernel(_wide_kernel(12))
        for instr in _all_instructions(result.program):
            for reg in instr.registers():
                assert isinstance(reg, Register)

    def test_vector_operands_within_architected_range(self):
        result = compile_kernel(_wide_kernel(14))
        for instr in _all_instructions(result.program):
            for reg in instr.registers():
                if reg.cls is RegClass.V:
                    assert 0 <= reg.index < 8

    @given(st.integers(min_value=2, max_value=16))
    @settings(max_examples=10, deadline=None)
    def test_allocation_always_completes(self, width):
        result = compile_kernel(_wide_kernel(width, trip=128))
        assert isinstance(result, CompilationResult)
        assert result.static_instructions > 0


class TestScalarAllocation:
    def test_many_disjoint_loops_need_no_scalar_spills(self):
        # Each loop uses a handful of base registers; live ranges are
        # disjoint, so the linear scan fits them all in the A register file.
        arrays = [ir.Array(f"y{i}", 128) for i in range(12)]
        kernel = ir.Kernel("disjoint")
        for i in range(0, 12, 2):
            kernel.add(ir.VectorLoop(
                f"loop{i}", trip=128,
                statements=(ir.VectorAssign(arrays[i].ref(), arrays[i + 1].ref() + 1.0),),
            ))
        result = compile_kernel(kernel)
        assert result.allocation.memory_resident_scalars == 0

    def test_one_loop_with_many_arrays_spills_scalars(self):
        arrays = [ir.Array(f"z{i}", 64) for i in range(10)]
        statements = tuple(
            ir.VectorAssign(arrays[i].ref(), arrays[i + 1].ref() + 1.0) for i in range(9)
        )
        kernel = ir.Kernel("pressure")
        kernel.add(ir.Loop("outer", 2, (ir.VectorLoop("loop", trip=64, statements=statements),)))
        result = compile_kernel(kernel)
        assert result.allocation.memory_resident_scalars > 0
        assert result.allocation.scalar_spill_loads > 0

    def test_constants_are_rematerialized_not_spilled(self):
        arrays = [ir.Array(f"c{i}", 64) for i in range(9)]
        constants = [ir.Const(float(i)) for i in range(12)]
        statements = tuple(
            ir.VectorAssign(arrays[i].ref(), arrays[i + 1].ref() * constants[i] + constants[i + 1])
            for i in range(8)
        )
        kernel = ir.Kernel("constants")
        kernel.add(ir.VectorLoop("loop", trip=64, statements=statements))
        result = compile_kernel(kernel)
        # S-class pressure comes only from single-`li` constants, which the
        # allocator rematerialises instead of spilling to memory.
        assert result.allocation.rematerialized_scalars >= 0
        for instr in _all_instructions(result.program):
            if instr.is_spill and instr.opcode in (Opcode.LOAD, Opcode.STORE):
                assert instr.srcs and instr.srcs[-1] == Register(RegClass.A, 7)


class TestScheduler:
    def test_policies_listed(self):
        assert set(SCHEDULING_POLICIES) == {"asis", "loads_first"}

    def test_unknown_policy_rejected(self):
        code = generate_code(_wide_kernel(3))
        with pytest.raises(CompilationError):
            schedule_code(code, "magic")

    def test_asis_is_identity(self):
        code = generate_code(_wide_kernel(3))
        before = [[instr.opcode for instr in block.instructions] for block in code.blocks]
        schedule_code(code, "asis")
        after = [[instr.opcode for instr in block.instructions] for block in code.blocks]
        assert before == after

    def test_loads_first_hoists_loads(self):
        code = generate_code(_wide_kernel(4))
        schedule_code(code, "loads_first")
        strip = next(block for block in code.blocks if "strip" in block.label)
        opcodes = [instr.opcode for instr in strip.instructions]
        first_alu = next(i for i, op in enumerate(opcodes) if op is Opcode.VADD)
        loads_after_alu = [op for op in opcodes[first_alu:] if op is Opcode.VLOAD]
        assert not loads_after_alu

    def test_scheduling_preserves_instruction_multiset(self):
        code = generate_code(_wide_kernel(5))
        before = sorted(str(i.opcode) for b in code.blocks for i in b.instructions)
        schedule_code(code, "loads_first")
        after = sorted(str(i.opcode) for b in code.blocks for i in b.instructions)
        assert before == after

    def test_compile_kernel_accepts_scheduling_option(self):
        result = compile_kernel(_wide_kernel(4), scheduling="loads_first")
        assert result.static_instructions > 0


class TestPipelineDriver:
    def test_program_validates(self):
        result = compile_kernel(_wide_kernel(6))
        result.program.validate()

    def test_static_counts_contain_vector_work(self):
        counts = compile_kernel(_wide_kernel(6)).program.static_counts()
        assert counts[InstrKind.VECTOR_ALU] > 0
        assert counts[InstrKind.VECTOR_LOAD] > 0
        assert counts[InstrKind.BRANCH] >= 1

    def test_allocation_stats_exposed(self):
        result = compile_kernel(_wide_kernel(12))
        assert result.allocation.spilled_vector_values >= result.allocation.vector_spill_stores - 1

    def test_allocate_registers_direct_call(self):
        code = CodeGenerator(_wide_kernel(10)).generate()
        stats = allocate_registers(code)
        assert stats.vector_spill_stores >= 0
        for block in code.blocks:
            for instr in block.instructions:
                assert not any(isinstance(r, VirtReg) for r in instr.registers())
