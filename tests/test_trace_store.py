"""Tests for the on-disk compiled-trace memoisation (repro.trace.store)."""

import pickle

import pytest

from repro.core.config import ooo_config, reference_config
from repro.core.settings import ExecutionPlan
from repro.core.runner import (
    TRACE_SUBDIR,
    ExperimentEngine,
    ExperimentSpec,
    ResultStore,
    _simulate_point,
)
from repro.trace.store import TRACE_STORE_VERSION, TraceStore
from repro.workloads.registry import get_workload


class TestTraceStoreBasics:
    def test_round_trip_preserves_trace(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = get_workload("trfd", "tiny").trace()
        store.put("trfd", "tiny", trace)
        fresh = TraceStore(tmp_path)
        loaded = fresh.get("trfd", "tiny")
        assert loaded is not None
        assert fresh.disk_hits == 1
        assert len(loaded) == len(trace)
        assert [i.opcode for i in loaded] == [i.opcode for i in trace]
        assert [i.address for i in loaded] == [i.address for i in trace]

    def test_miss_returns_none(self, tmp_path):
        assert TraceStore(tmp_path).get("trfd", "tiny") is None

    def test_load_or_generate_compiles_once_then_loads(self, tmp_path):
        store = TraceStore(tmp_path)
        first = store.load_or_generate("trfd", "tiny")
        assert store.generated == 1
        assert len(first) > 0
        fresh = TraceStore(tmp_path)
        second = fresh.load_or_generate("trfd", "tiny")
        assert fresh.generated == 0
        assert fresh.disk_hits == 1
        assert len(second) == len(first)

    def test_warm_store_never_recompiles(self, tmp_path, monkeypatch):
        store = TraceStore(tmp_path)
        store.load_or_generate("trfd", "tiny")

        import repro.workloads.registry as registry

        def boom(*args, **kwargs):  # any compile attempt is a failure
            raise AssertionError("trace was recompiled despite a warm store")

        monkeypatch.setattr(registry, "get_workload", boom)
        fresh = TraceStore(tmp_path)
        assert fresh.load_or_generate("trfd", "tiny") is not None

    def test_corrupt_entry_is_dropped_and_regenerated(self, tmp_path):
        store = TraceStore(tmp_path)
        store.load_or_generate("trfd", "tiny")
        path = next(tmp_path.glob("*.trace.pkl"))
        path.write_bytes(path.read_bytes()[:40])  # truncate mid-pickle
        fresh = TraceStore(tmp_path)
        assert fresh.get("trfd", "tiny") is None
        assert not path.exists()
        regenerated = fresh.load_or_generate("trfd", "tiny")
        assert fresh.generated == 1
        assert len(regenerated) > 0

    def test_version_mismatch_is_dropped(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = get_workload("trfd", "tiny").trace()
        store.put("trfd", "tiny", trace)
        path = next(tmp_path.glob("*.trace.pkl"))
        payload = pickle.loads(path.read_bytes())
        payload["version"] = TRACE_STORE_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        assert TraceStore(tmp_path).get("trfd", "tiny") is None
        assert not path.exists()

    def test_key_mismatch_is_dropped(self, tmp_path):
        # An entry claiming to be a different (workload, scale) never leaks
        # into the wrong simulation point.
        store = TraceStore(tmp_path)
        trace = get_workload("trfd", "tiny").trace()
        store.put("trfd", "tiny", trace)
        src = next(tmp_path.glob("*.trace.pkl"))
        dst = tmp_path / f"bdna-tiny-v{TRACE_STORE_VERSION}.trace.pkl"
        dst.write_bytes(src.read_bytes())
        assert TraceStore(tmp_path).get("bdna", "tiny") is None
        assert not dst.exists()

    def test_ensure_reports_compilation(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.ensure("trfd", "tiny") is True
        assert store.ensure("trfd", "tiny") is False
        assert store.generated == 1

    def test_gc_drops_stale_versions_and_temp_files(self, tmp_path):
        store = TraceStore(tmp_path)
        store.ensure("trfd", "tiny")
        (tmp_path / f"bdna-tiny-v{TRACE_STORE_VERSION + 1}.trace.pkl").write_bytes(b"x")
        (tmp_path / ".trfd.trace.pkl.1234.deadbeef.tmp").write_bytes(b"x")
        assert store.gc() == (1, 2)
        assert store.gc() == (1, 0)
        assert store.get("trfd", "tiny") is not None
        # a store whose directory never existed reports nothing to do
        assert TraceStore(tmp_path / "missing").gc() == (0, 0)

    def test_ensure_repairs_corrupt_entries(self, tmp_path):
        # ensure() must validate by loading: a corrupt leftover file would
        # otherwise pass a bare existence check and defeat the prewarm,
        # making every worker recompile the trace.
        store = TraceStore(tmp_path)
        store.ensure("trfd", "tiny")
        path = next(tmp_path.glob("*.trace.pkl"))
        path.write_bytes(b"\x80corrupt")
        fresh = TraceStore(tmp_path)
        assert fresh.ensure("trfd", "tiny") is True  # recompiled in parent
        assert fresh.get("trfd", "tiny") is not None

    def test_load_memoised_unpickles_once_per_process(self, tmp_path, monkeypatch):
        store = TraceStore(tmp_path)
        store.ensure("trfd", "tiny")

        import repro.trace.store as store_mod

        real_get = store_mod.TraceStore.get
        loads = {"count": 0}

        def counting_get(self, workload, scale):
            loads["count"] += 1
            return real_get(self, workload, scale)

        monkeypatch.setattr(store_mod.TraceStore, "get", counting_get)
        first = TraceStore(tmp_path).load_memoised("trfd", "tiny")
        second = TraceStore(tmp_path).load_memoised("trfd", "tiny")
        assert first is second  # served from the per-process memo
        assert loads["count"] <= 1


class TestEngineTraceMemoisation:
    def test_engine_with_cache_dir_gets_a_trace_store(self, tmp_path):
        engine = ExperimentEngine(ResultStore(tmp_path))
        assert engine.trace_store is not None
        assert engine.trace_store.cache_dir == tmp_path / TRACE_SUBDIR

    def test_memory_only_engine_has_no_trace_store(self):
        assert ExperimentEngine().trace_store is None

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_cold_run_compiles_each_workload_trace_at_most_once(self, tmp_path, jobs):
        # The acceptance criterion: a cold parallel sweep pre-warms the
        # trace store in the parent, so each (workload, scale) is compiled
        # at most once no matter how many workers or grid points need it.
        engine = ExperimentEngine(ResultStore(tmp_path), plan=ExecutionPlan(jobs=jobs))
        spec = ExperimentSpec.grid(
            "cold", ["trfd", "bdna"],
            [reference_config(), ooo_config(), ooo_config(phys_vregs=32)], "tiny")
        results = engine.run_spec(spec)
        assert len(results) == 6
        assert engine.simulated == 6
        assert engine.trace_store.generated <= 2  # at most once per workload
        assert engine.trace_store.contains("trfd", "tiny")
        assert engine.trace_store.contains("bdna", "tiny")
        # a second engine (fresh process, in spirit) loads, never compiles
        warm = ExperimentEngine(ResultStore(tmp_path), plan=ExecutionPlan(jobs=jobs))
        warm.run_spec(spec)
        assert warm.trace_store.generated == 0

    def test_worker_entry_point_loads_from_store(self, tmp_path, monkeypatch):
        # _simulate_point with a trace_dir must use the memoised trace, not
        # the compiler: poison compilation and check the point still runs.
        from repro.core.runner import ExperimentPoint

        parent = TraceStore(tmp_path)
        parent.ensure("trfd", "tiny")

        import repro.core.simulator as simulator_mod
        import repro.workloads.registry as registry

        def boom(*args, **kwargs):
            raise AssertionError("worker recompiled the trace")

        monkeypatch.setattr(registry, "get_workload", boom)
        monkeypatch.setattr(simulator_mod, "get_workload", boom)
        point = ExperimentPoint("trfd", "tiny", ooo_config())
        payload = _simulate_point(point, str(tmp_path))
        assert payload["stats"]["cycles"] > 0
        # sanity: without the trace store the poison does fire
        with pytest.raises(AssertionError):
            _simulate_point(point, None)

    def test_parallel_results_match_serial_with_trace_store(self, tmp_path):
        spec = ExperimentSpec.grid(
            "par", ["trfd"], [reference_config(), ooo_config()], "tiny")
        serial = ExperimentEngine(
            ResultStore(tmp_path / "a"), plan=ExecutionPlan(jobs=1)).run_spec(spec)
        parallel = ExperimentEngine(
            ResultStore(tmp_path / "b"), plan=ExecutionPlan(jobs=2)).run_spec(spec)
        assert set(serial) == set(parallel)
        for point in serial:
            assert serial[point].stats.to_dict() == parallel[point].stats.to_dict()

    def test_summary_mentions_traces(self, tmp_path):
        engine = ExperimentEngine(ResultStore(tmp_path))
        engine.result("trfd", ooo_config(), scale="tiny")
        assert "traces:" in engine.summary()

    def test_prewarm_validates_each_trace_once_per_engine(self, tmp_path, monkeypatch):
        # Successive exhibit batches on one engine must not re-ensure (and
        # re-unpickle) traces the engine already validated.
        engine = ExperimentEngine(ResultStore(tmp_path))
        calls = []
        real_ensure = engine.trace_store.ensure

        def counting_ensure(workload, scale):
            calls.append((workload, scale))
            return real_ensure(workload, scale)

        monkeypatch.setattr(engine.trace_store, "ensure", counting_ensure)
        engine.result("trfd", ooo_config(), scale="tiny")
        engine.result("trfd", ooo_config(phys_vregs=32), scale="tiny")
        engine.result("trfd", reference_config(), scale="tiny")
        assert calls == [("trfd", "tiny")]
