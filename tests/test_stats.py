"""Unit tests for simulation statistics containers."""

import pytest

from repro.common.stats import (
    MemoryTraffic,
    SimStats,
    VECTOR_UNIT_ORDER,
    format_state,
    speedup,
    state_histogram_table,
    traffic_reduction,
)


class TestMemoryTraffic:
    def test_total_ops(self):
        traffic = MemoryTraffic(vector_load_ops=100, vector_store_ops=50,
                                scalar_load_ops=7, scalar_store_ops=3)
        assert traffic.total_ops == 160

    def test_spill_ops(self):
        traffic = MemoryTraffic(vector_load_spill_ops=10, scalar_store_spill_ops=2)
        assert traffic.spill_ops == 12

    def test_eliminated_ops(self):
        traffic = MemoryTraffic(eliminated_vector_load_ops=64, eliminated_scalar_load_ops=3)
        assert traffic.total_eliminated_ops == 67


class TestSimStats:
    def test_unit_order_matches_paper(self):
        assert VECTOR_UNIT_ORDER == ("FU2", "FU1", "MEM")

    def test_record_and_query_unit_busy(self):
        stats = SimStats()
        stats.record_unit_busy("FU1", 0, 100)
        stats.record_unit_busy("FU1", 50, 150)
        assert stats.unit_busy_cycles("FU1") == 150

    def test_memory_port_idle_fraction(self):
        stats = SimStats(cycles=200)
        stats.address_port_busy_cycles = 150
        assert stats.memory_port_idle_cycles() == 50
        assert stats.memory_port_idle_fraction() == pytest.approx(0.25)

    def test_idle_fraction_zero_cycles(self):
        assert SimStats().memory_port_idle_fraction() == 0.0

    def test_state_breakdown_partitions_cycles(self):
        stats = SimStats(cycles=100)
        stats.record_unit_busy("FU2", 0, 30)
        stats.record_unit_busy("MEM", 20, 80)
        breakdown = stats.state_breakdown()
        assert sum(breakdown.values()) == 100
        assert breakdown[(True, False, True)] == 10

    def test_ideal_cycles_is_busiest_unit(self):
        stats = SimStats(cycles=500)
        stats.record_unit_busy("FU1", 0, 100)
        stats.record_unit_busy("FU2", 0, 150)
        stats.record_unit_busy("MEM", 0, 400)
        assert stats.ideal_cycles() == 400

    def test_vectorization_percent(self):
        stats = SimStats(scalar_instructions=50, branch_instructions=50,
                         vector_instructions=10, vector_operations=900)
        assert stats.vectorization_percent() == pytest.approx(90.0)

    def test_average_vector_length(self):
        stats = SimStats(vector_instructions=4, vector_operations=500)
        assert stats.average_vector_length() == pytest.approx(125.0)
        assert SimStats().average_vector_length() == 0.0


class TestRatios:
    def test_speedup(self):
        slow = SimStats(cycles=200)
        fast = SimStats(cycles=100)
        assert speedup(slow, fast) == pytest.approx(2.0)

    def test_speedup_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            speedup(SimStats(cycles=10), SimStats(cycles=0))

    def test_traffic_reduction(self):
        base = SimStats()
        base.traffic.vector_load_ops = 1000
        opt = SimStats()
        opt.traffic.vector_load_ops = 800
        assert traffic_reduction(base, opt) == pytest.approx(1.25)

    def test_traffic_reduction_zero_rejected(self):
        with pytest.raises(ValueError):
            traffic_reduction(SimStats(), SimStats())


class TestFormatting:
    def test_format_state(self):
        assert format_state((True, True, True)) == "<FU2,FU1,MEM>"
        assert format_state((False, False, False)) == "<,,>"
        assert format_state((False, True, False)) == "<,FU1,>"

    def test_histogram_table(self):
        table = state_histogram_table({(True, False, True): 12, (False, False, False): 3})
        assert "<FU2,,MEM>" in table
        assert "12" in table
