"""Differential & property tests for the pluggable ResultStore backends.

Both production backends (sharded JSON, SQLite) are driven through the same
scenarios — round-trips, process-restart simulation, corruption tolerance,
garbage collection — plus hypothesis-generated results to probe the
serialisation path with adversarial statistics.
"""

import json
import sqlite3
import uuid

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import ReproError
from repro.common.stats import MemoryTraffic, SimStats
from repro.core.config import ooo_config, reference_config
from repro.core.results import SimulationResult
from repro.core.runner import ExperimentEngine, ExperimentPoint, ExperimentSpec, ResultStore
from repro.core.store import (
    BACKEND_NAMES,
    STORE_ENV,
    STORE_VERSION,
    ShardedJSONBackend,
    SQLiteBackend,
    default_backend_kind,
    make_backend,
)

BACKENDS = list(BACKEND_NAMES)


def _point(regs=16, latency=50, workload="trfd", scale="tiny"):
    return ExperimentPoint(workload, scale, ooo_config(phys_vregs=regs, latency=latency))


def _result(point, cycles=1000, **stat_kwargs):
    stats = SimStats(cycles=cycles, **stat_kwargs)
    return SimulationResult(
        workload=point.workload,
        config_name=point.config.name,
        params=point.config.params,
        stats=stats,
    )


def _entry_file(cache_dir, point):
    files = list(cache_dir.glob(f"??/*-{point.fingerprint()[:16]}.json"))
    assert len(files) == 1
    return files[0]


def _object_entry_file(cache_dir, point):
    from repro.core.objectstore import OBJECT_SUBDIR, RESULT_PREFIX

    key = point.fingerprint()
    path = cache_dir / OBJECT_SUBDIR / RESULT_PREFIX / key[:2] / f"{key}.json"
    assert path.is_file()
    return path


def _corrupt_entry(backend_kind, cache_dir, point, text="{truncat"):
    """Damage the stored payload for ``point`` in a backend-appropriate way."""
    if backend_kind == "json":
        _entry_file(cache_dir, point).write_text(text, encoding="utf-8")
    elif backend_kind == "object":
        _object_entry_file(cache_dir, point).write_text(text, encoding="utf-8")
    else:
        with sqlite3.connect(cache_dir / SQLiteBackend.DB_NAME) as conn:
            conn.execute(
                "UPDATE results SET payload = ? WHERE fingerprint = ?",
                (text, point.fingerprint()),
            )
            conn.commit()


# ---------------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------------


class TestBackendSelection:
    def test_default_is_json(self, monkeypatch, tmp_path):
        monkeypatch.delenv(STORE_ENV, raising=False)
        assert default_backend_kind() == "json"
        assert isinstance(ResultStore(tmp_path).backend, ShardedJSONBackend)

    def test_env_selects_sqlite(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_ENV, "sqlite")
        store = ResultStore(tmp_path)
        assert isinstance(store.backend, SQLiteBackend)
        store.close()

    def test_unknown_env_backend_rejected(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_ENV, "blockchain")
        with pytest.raises(ReproError, match="blockchain"):
            ResultStore(tmp_path)

    def test_unknown_explicit_backend_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="available"):
            make_backend("memcached", tmp_path)

    def test_backend_instance_accepted(self, tmp_path):
        backend = ShardedJSONBackend(tmp_path)
        store = ResultStore(backend=backend)
        assert store.backend is backend
        assert store.cache_dir == tmp_path

    def test_memory_only_store_has_no_backend(self):
        store = ResultStore()
        assert store.backend is None
        assert store.describe() == "memory"
        assert store.gc() == (0, 0)

    def test_backend_kind_without_cache_dir_rejected(self):
        # A caller explicitly asking for persistence must not silently get
        # a memory-only store.
        with pytest.raises(ReproError, match="cache directory"):
            ResultStore(backend="sqlite")


# ---------------------------------------------------------------------------
# Differential backend battery: every scenario runs against both backends
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendContract:
    def test_round_trip_preserves_payload(self, backend, tmp_path):
        store = ResultStore(tmp_path, backend=backend)
        point = _point()
        result = _result(point, cycles=1234, rename_stall_cycles=7)
        store.put(point, result)
        fresh = ResultStore(tmp_path, backend=backend)
        fetched = fresh.get(point)
        assert fetched is not None
        assert fetched.to_dict() == result.to_dict()
        assert fresh.disk_hits == 1

    def test_entries_survive_restart_and_clear_memory(self, backend, tmp_path):
        store = ResultStore(tmp_path, backend=backend)
        point = _point()
        store.put(point, _result(point))
        store.clear_memory()
        assert store.get(point) is not None
        fresh = ResultStore(tmp_path, backend=backend)
        assert fresh.contains(point)
        assert fresh.get(point) is not None

    def test_corrupt_entry_degrades_to_miss(self, backend, tmp_path):
        store = ResultStore(tmp_path, backend=backend)
        point = _point()
        store.put(point, _result(point))
        store.close()
        _corrupt_entry(backend, tmp_path, point)
        fresh = ResultStore(tmp_path, backend=backend)
        assert fresh.get(point) is None
        # the broken entry is gone: contains() agrees and a re-put heals it
        assert not fresh.contains(point)
        fresh.put(point, _result(point))
        fresh.clear_memory()
        assert fresh.get(point) is not None

    def test_stale_params_are_dropped_on_get(self, backend, tmp_path):
        store = ResultStore(tmp_path, backend=backend)
        point = _point()
        store.put(point, _result(point))
        store.close()
        payload = {
            "version": STORE_VERSION,
            "key": {"fingerprint": point.fingerprint()},
            "result": {"workload": "trfd", "config_name": "ooo",
                       "params": {"kind": "ooo", "num_phys_vregs": 4},  # invalid
                       "stats": {}},
        }
        _corrupt_entry(backend, tmp_path, point, json.dumps(payload))
        fresh = ResultStore(tmp_path, backend=backend)
        assert fresh.get(point) is None

    def test_gc_keeps_valid_and_evicts_invalid(self, backend, tmp_path):
        store = ResultStore(tmp_path, backend=backend)
        good, bad = _point(regs=16), _point(regs=32)
        store.put(good, _result(good))
        store.put(bad, _result(bad))
        store.close()
        _corrupt_entry(backend, tmp_path, bad)
        fresh = ResultStore(tmp_path, backend=backend)
        kept, evicted = fresh.gc()
        assert (kept, evicted) == (1, 1)
        assert fresh.get(good) is not None
        assert not fresh.contains(bad)
        # a second gc finds nothing left to evict
        assert fresh.gc() == (1, 0)

    def test_gc_evicts_old_store_versions(self, backend, tmp_path):
        store = ResultStore(tmp_path, backend=backend)
        point = _point()
        store.put(point, _result(point))
        store.close()
        path_payload = {
            "version": STORE_VERSION + 1,
            "key": {"fingerprint": point.fingerprint(), "workload": "trfd",
                    "scale": "tiny", "config_name": point.config.name},
            "result": _result(point).to_dict(),
        }
        _corrupt_entry(backend, tmp_path, point, json.dumps(path_payload))
        fresh = ResultStore(tmp_path, backend=backend)
        assert fresh.gc() == (0, 1)

    def test_delete_then_get_misses(self, backend, tmp_path):
        store = ResultStore(tmp_path, backend=backend)
        point = _point()
        store.put(point, _result(point))
        store.backend.delete(point.fingerprint(), point)
        store.clear_memory()
        assert store.get(point) is None

    def test_engine_warm_start_simulates_nothing(self, backend, tmp_path):
        spec = ExperimentSpec.grid(
            "warm", ["trfd"], [reference_config(), ooo_config()], "tiny")
        cold = ExperimentEngine(ResultStore(tmp_path, backend=backend))
        cold.run_spec(spec)
        assert cold.simulated == 2
        warm = ExperimentEngine(ResultStore(tmp_path, backend=backend))
        warm.run_spec(spec)
        assert warm.simulated == 0
        assert warm.disk_hits == len(spec)


# ---------------------------------------------------------------------------
# JSON-backend specifics: sharding and the index file
# ---------------------------------------------------------------------------


class TestShardedLayout:
    def test_entries_shard_by_fingerprint_prefix(self, tmp_path):
        store = ResultStore(tmp_path, backend="json")
        points = [_point(regs=r, latency=lat) for r in (9, 16, 32, 64)
                  for lat in (1, 50, 100)]
        for point in points:
            store.put(point, _result(point))
        for point in points:
            expected = tmp_path / point.fingerprint()[:2]
            assert list(expected.glob(f"*-{point.fingerprint()[:16]}.json"))

    def test_flush_writes_index(self, tmp_path):
        store = ResultStore(tmp_path, backend="json")
        point = _point()
        store.put(point, _result(point))
        store.flush()
        index = json.loads((tmp_path / "_index.json").read_text(encoding="utf-8"))
        assert index["version"] == STORE_VERSION
        entry = index["entries"][point.fingerprint()]
        assert entry["key"]["workload"] == "trfd"
        assert (tmp_path / entry["path"]).is_file()

    def test_gc_rebuilds_index(self, tmp_path):
        store = ResultStore(tmp_path, backend="json")
        good, bad = _point(regs=16), _point(regs=32)
        store.put(good, _result(good))
        store.put(bad, _result(bad))
        store.flush()
        _corrupt_entry("json", tmp_path, bad)
        store.gc()
        index = json.loads((tmp_path / "_index.json").read_text(encoding="utf-8"))
        assert set(index["entries"]) == {good.fingerprint()}

    def test_gc_removes_foreign_files_exactly_once(self, tmp_path):
        # A file that is not a store entry at all (undecodable, or JSON
        # without a key block) must be evicted by path — once — and must
        # never crash the index rebuild.
        store = ResultStore(tmp_path, backend="json")
        point = _point()
        store.put(point, _result(point))
        shard = tmp_path / point.fingerprint()[:2]
        (shard / "notes.json").write_text("not even json", encoding="utf-8")
        (shard / "keyless.json").write_text('{"version": 1}', encoding="utf-8")
        assert store.gc() == (1, 2)
        assert not (shard / "notes.json").exists()
        assert not (shard / "keyless.json").exists()
        assert store.gc() == (1, 0)  # nothing left to re-count
        index = json.loads((tmp_path / "_index.json").read_text(encoding="utf-8"))
        assert set(index["entries"]) == {point.fingerprint()}

    def test_gc_sweeps_temp_and_legacy_files(self, tmp_path):
        # Crashed-writer temp files and pre-sharding flat-layout entries
        # are dead bytes the backend never reads; gc reclaims them.
        store = ResultStore(tmp_path, backend="json")
        point = _point()
        store.put(point, _result(point))
        shard = tmp_path / point.fingerprint()[:2]
        (shard / ".entry.json.1234.deadbeef.tmp").write_text("{", encoding="utf-8")
        (tmp_path / ".._index.json.1234.deadbeef.tmp").write_text("{", encoding="utf-8")
        (tmp_path / "trfd-tiny-ooo-0011223344556677.json").write_text(
            "{}", encoding="utf-8")  # legacy flat-layout entry
        assert store.gc() == (1, 3)
        assert store.gc() == (1, 0)
        assert store.get(point) is not None

    def test_gc_survives_incomplete_key_blocks(self, tmp_path):
        # A valid result whose key block lost fields (older writer) must
        # neither crash gc nor be evicted: the payload still validates.
        store = ResultStore(tmp_path, backend="json")
        point = _point()
        store.put(point, _result(point))
        path = _entry_file(tmp_path, point)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["key"] = {"fingerprint": point.fingerprint()}
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.gc() == (1, 0)

    def test_transient_read_error_is_a_miss_not_a_delete(self, tmp_path, monkeypatch):
        # An EIO/NFS hiccup while reading must degrade to a miss without
        # deleting a perfectly valid entry (only *decode* failures may).
        from pathlib import Path

        store = ResultStore(tmp_path, backend="json")
        point = _point()
        store.put(point, _result(point))
        store.clear_memory()
        entry = _entry_file(tmp_path, point)
        real_read_text = Path.read_text

        def flaky(self, *args, **kwargs):
            if self == entry:
                raise OSError(5, "Input/output error")
            return real_read_text(self, *args, **kwargs)

        monkeypatch.setattr(Path, "read_text", flaky)
        assert store.get(point) is None
        monkeypatch.undo()
        assert entry.exists()  # the entry survived the bad read
        assert store.get(point) is not None

    def test_unreadable_index_is_ignored(self, tmp_path):
        (tmp_path / "_index.json").write_text("{nope", encoding="utf-8")
        store = ResultStore(tmp_path, backend="json")
        point = _point()
        store.put(point, _result(point))
        store.flush()
        index = json.loads((tmp_path / "_index.json").read_text(encoding="utf-8"))
        assert point.fingerprint() in index["entries"]


class TestSQLiteSpecifics:
    def test_concurrent_stores_share_one_database(self, tmp_path):
        a = ResultStore(tmp_path, backend="sqlite")
        b = ResultStore(tmp_path, backend="sqlite")
        pa, pb = _point(regs=16), _point(regs=32)
        a.put(pa, _result(pa))
        b.put(pb, _result(pb))
        assert a.get(pb) is not None
        assert b.get(pa) is not None
        a.close()
        b.close()
        assert (tmp_path / SQLiteBackend.DB_NAME).is_file()

    def test_wal_mode_enabled(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        mode = store.backend._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        store.close()

    def test_transient_open_errors_never_delete_the_database(self, tmp_path, monkeypatch):
        # OperationalError (locked past the busy timeout, I/O hiccup) may
        # mean another process holds a healthy database: never self-heal
        # by deleting it.
        store = ResultStore(tmp_path, backend="sqlite")
        point = _point()
        store.put(point, _result(point))
        store.close()

        def locked(self):
            raise sqlite3.OperationalError("database is locked")

        monkeypatch.setattr(SQLiteBackend, "_open", locked)
        with pytest.raises(ReproError, match="database is locked"):
            ResultStore(tmp_path, backend="sqlite")
        monkeypatch.undo()
        healthy = ResultStore(tmp_path, backend="sqlite")
        assert healthy.get(point) is not None  # data survived the failure
        healthy.close()

    def test_corrupt_database_self_heals(self, tmp_path):
        # A results.db that is not a SQLite database (killed mid-write,
        # disk-full) is just a worthless cache: drop it and start fresh
        # instead of wedging every command behind a manual delete.
        (tmp_path / SQLiteBackend.DB_NAME).write_bytes(b"\x00not a database")
        store = ResultStore(tmp_path, backend="sqlite")
        point = _point()
        store.put(point, _result(point))
        store.clear_memory()
        assert store.get(point) is not None
        store.close()

    def test_reconfiguring_default_engine_closes_previous_store(self, tmp_path):
        # Repeated configure_engine calls (one per CLI invocation, many per
        # test session) must not leak live SQLite connections.
        from repro.core.runner import configure_engine, set_engine

        try:
            first = configure_engine(cache_dir=tmp_path, store="sqlite")
            configure_engine(cache_dir=tmp_path, store="sqlite")
            with pytest.raises(sqlite3.ProgrammingError):
                first.store.backend._conn.execute("SELECT 1")
        finally:
            set_engine(None)


# ---------------------------------------------------------------------------
# Property tests: hypothesis-generated results through both backends
# ---------------------------------------------------------------------------


def _intervals(draw):
    bounds = draw(st.lists(st.integers(0, 500), min_size=0, max_size=8,
                           unique=True).map(sorted))
    if len(bounds) % 2:
        bounds = bounds[:-1]
    return [[bounds[i], bounds[i + 1]] for i in range(0, len(bounds), 2)]


@st.composite
def simulation_results(draw):
    """A (point, result) pair with adversarial-but-valid statistics."""
    regs = draw(st.sampled_from([9, 16, 32, 64]))
    latency = draw(st.sampled_from([1, 20, 50, 70, 100]))
    point = _point(regs=regs, latency=latency,
                   workload=draw(st.sampled_from(["trfd", "bdna", "dyfesm"])))
    counters = st.integers(min_value=0, max_value=10**9)
    stats = SimStats(
        cycles=draw(st.integers(min_value=1, max_value=10**9)),
        scalar_instructions=draw(counters),
        vector_instructions=draw(counters),
        branch_instructions=draw(counters),
        vector_operations=draw(counters),
        address_port_busy_cycles=draw(counters),
        branch_mispredictions=draw(counters),
        branches_predicted=draw(counters),
        rename_stall_cycles=draw(counters),
        rob_stall_cycles=draw(counters),
        queue_stall_cycles=draw(counters),
        loads_eliminated=draw(counters),
        scalar_loads_eliminated=draw(counters),
        stores_executed_at_head=draw(counters),
        traffic=MemoryTraffic(
            vector_load_ops=draw(counters),
            vector_store_ops=draw(counters),
            scalar_load_ops=draw(counters),
            scalar_store_ops=draw(counters),
        ),
    )
    for unit in ("FU1", "FU2", "MEM"):
        for start, end in _intervals(draw):
            stats.record_unit_busy(unit, start, end)
    return point, SimulationResult(
        workload=point.workload,
        config_name=point.config.name,
        params=point.config.params,
        stats=stats,
    )


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendProperties:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=simulation_results())
    def test_round_trip_preserves_to_dict(self, backend, tmp_path, data):
        point, result = data
        root = tmp_path / uuid.uuid4().hex
        store = ResultStore(root, backend=backend)
        store.put(point, result)
        # survives a simulated process restart (fresh store instance)
        store.clear_memory()
        fetched = store.get(point)
        assert fetched is not None
        assert fetched.to_dict() == result.to_dict()
        store.close()
        fresh = ResultStore(root, backend=backend)
        refetched = fresh.get(point)
        assert refetched is not None
        assert refetched.to_dict() == result.to_dict()
        fresh.close()

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=simulation_results(),
           cut=st.integers(min_value=0, max_value=60),
           junk=st.sampled_from(["", "{", "null", "[1,2", "\x00\x00"]))
    def test_truncated_entries_miss_then_resimulate(self, backend, tmp_path,
                                                    data, cut, junk):
        point, result = data
        root = tmp_path / uuid.uuid4().hex
        store = ResultStore(root, backend=backend)
        store.put(point, result)
        store.close()
        text = json.dumps(result.to_dict())[:cut] + junk
        _corrupt_entry(backend, root, point, text)
        fresh = ResultStore(root, backend=backend)
        # never raises: a damaged entry is a miss...
        assert fresh.get(point) is None
        # ...and the engine transparently re-simulates and re-stores it
        engine = ExperimentEngine(fresh)
        healed = engine.run_point(point)
        assert engine.simulated == 1
        assert healed.cycles > 0
        fresh.clear_memory()
        assert fresh.get(point) is not None
        fresh.close()
