"""API-level tests for the PR-8 redesign: ExecutionPlan, RunHandle, fleet.

Covers the frozen :class:`~repro.api.ExecutionPlan` (validation, Settings
resolution, the warn-but-identical legacy-kwarg shim on
:class:`~repro.core.runner.ExperimentEngine`), the
:meth:`Session.submit() <repro.api.Session.submit>` →
:class:`~repro.api.RunHandle` lifecycle in both execution modes, and the
headline fleet guarantee: a grid run through spawned fleet workers is
**byte-identical** to the same grid run in-process.
"""

import json
import warnings

import pytest

from repro.api import (
    ExecutionPlan,
    FLEET_ENV,
    RunHandle,
    RunRequest,
    RunStatus,
    Session,
    Settings,
)
from repro.core.runner import ExperimentEngine, ResultStore


class TestExecutionPlan:
    def test_defaults(self):
        plan = ExecutionPlan()
        assert (plan.jobs, plan.intra_jobs, plan.chunk_size) == (1, 1, 0)
        assert plan.kernel == "scalar"
        assert plan.fleet == 0

    @pytest.mark.parametrize("bad", [
        {"jobs": 0}, {"intra_jobs": 0}, {"chunk_size": -1},
        {"kernel": "quantum"}, {"fleet": -1},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ExecutionPlan(**bad)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExecutionPlan().jobs = 2

    def test_describe_mentions_fleet_only_when_on(self):
        assert "fleet" not in ExecutionPlan().describe()
        assert "fleet=3" in ExecutionPlan(fleet=3).describe()

    def test_settings_resolve_once_into_the_plan(self):
        settings = Settings.resolve(
            jobs=2, chunk_size=500, kernel="batched", fleet=4, env={})
        plan = settings.plan()
        assert plan == ExecutionPlan(
            jobs=2, intra_jobs=1, chunk_size=500, kernel="batched", fleet=4)

    def test_fleet_env_var(self):
        assert Settings.resolve(env={FLEET_ENV: "3"}).plan().fleet == 3
        assert Settings.resolve(env={}).plan().fleet == 0
        # explicit beats environment, as everywhere in Settings
        assert Settings.resolve(fleet=1, env={FLEET_ENV: "9"}).plan().fleet == 1


class TestLegacyEngineKwargs:
    """The deprecation shim: old kwargs warn but behave identically."""

    def test_legacy_kwargs_warn_and_match_the_plan_equivalent(self):
        with pytest.warns(DeprecationWarning, match="ExecutionPlan"):
            legacy = ExperimentEngine(
                ResultStore(None), jobs=2, intra_jobs=2, chunk_size=400)
        modern = ExperimentEngine(
            ResultStore(None),
            plan=ExecutionPlan(jobs=2, intra_jobs=2, chunk_size=400))
        assert legacy.plan == modern.plan
        assert (legacy.jobs, legacy.intra_jobs, legacy.chunk_size) == (
            modern.jobs, modern.intra_jobs, modern.chunk_size)

    def test_positional_int_still_means_jobs(self):
        with pytest.warns(DeprecationWarning):
            engine = ExperimentEngine(ResultStore(None), 3)
        assert engine.jobs == 3

    def test_plan_and_legacy_kwargs_together_are_an_error(self):
        with pytest.raises(TypeError, match="alongside"):
            ExperimentEngine(
                ResultStore(None), plan=ExecutionPlan(jobs=2), jobs=2)

    def test_unknown_kwargs_are_an_error(self):
        with pytest.raises(TypeError, match="workers"):
            ExperimentEngine(ResultStore(None), workers=4)

    def test_plan_construction_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine = ExperimentEngine(
                ResultStore(None), plan=ExecutionPlan(jobs=2))
        assert engine.plan.jobs == 2

    def test_legacy_validation_still_raises_value_error(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="jobs must be at least 1"):
                ExperimentEngine(ResultStore(None), jobs=0)


GRID = RunRequest(workloads=("nasa7",), configs=("reference", "ooo"))


class TestRunHandleInProcess:
    def test_submit_is_lazy_and_result_resolves(self):
        with Session(env={}) as session:
            handle = session.submit(GRID)
            assert isinstance(handle, RunHandle)
            assert handle.done() is False
            before = handle.status()
            assert isinstance(before, RunStatus)
            assert before.state == "pending"
            assert (before.total, before.completed) == (2, 0)
            assert session.engine.simulated == 0  # nothing ran yet

            grid = handle.result()
            assert session.engine.simulated == 2
            after = handle.status()
            assert after.done and after.state == "done"
            assert after.completed == after.total == 2
            assert handle.done() is True
            assert grid.get("nasa7", "ooo").to_dict() is not None
            assert "done: 2/2 points" in repr(handle)

    def test_run_is_submit_then_result(self):
        with Session(env={}) as one, Session(env={}) as two:
            assert (one.run(GRID).to_dict()
                    == two.submit(GRID).result().to_dict())

    def test_status_counts_warm_cache_points_before_computing(self, tmp_path):
        with Session(cache_dir=tmp_path, env={}) as warm:
            warm.run(GRID)
        with Session(cache_dir=tmp_path, env={}) as session:
            status = session.submit(GRID).status()
            assert status.state == "pending"  # cache occupancy, not "done"
            assert status.completed == status.total == 2

    def test_watch_timeout_is_documented_inapplicable_in_process(self):
        # in-process execution is synchronous on the calling thread: the
        # timeout cannot interrupt it and the run simply completes
        with Session(env={}) as session:
            status = session.submit(GRID).watch(timeout=0.000001)
            assert status.done

    def test_failed_compute_is_cached_and_reraised(self):
        with Session(env={}) as session:
            handle = session.submit(GRID)
            boom = RuntimeError("injected engine failure")

            def explode(spec):
                raise boom

            handle._engine = session.engine
            original = session.engine.run_spec
            session.engine.run_spec = explode
            try:
                with pytest.raises(RuntimeError, match="injected"):
                    handle.watch()
            finally:
                session.engine.run_spec = original
            assert handle.status().state == "failed"
            with pytest.raises(RuntimeError, match="injected"):
                handle.result()  # the cached error re-raises, never recomputes

    def test_per_request_overrides_run_on_a_transient_engine(self):
        with Session(env={}) as session:
            handle = session.submit(
                RunRequest(workloads=("nasa7",), configs=("reference",),
                           chunk_size=300))
            assert handle._engine is not session.engine
            assert handle._engine.plan.chunk_size == 300
            assert handle.result().get("nasa7", "reference") is not None


class TestFleetParity:
    def test_fleet_grid_is_byte_identical_to_in_process(self, tmp_path):
        reference = Session(env={})
        try:
            expected = reference.run(GRID).to_dict()
        finally:
            reference.close()

        with Session(
            cache_dir=tmp_path / "fleet", store="object", fleet=1, env={},
        ) as session:
            assert session.engine.fleet == 1
            handle = session.submit(GRID)
            assert handle._batch is not None and len(handle._batch) == 2
            status = handle.watch(timeout=300)
            assert status.done
            actual = handle.result().to_dict()
            assert session.engine.fleet_points == 2
            summary = session.engine_summary()
            assert summary["fleet"] == {"workers": 1, "dispatched": 2}

        assert json.dumps(actual, sort_keys=True) == json.dumps(
            expected, sort_keys=True)

    def test_fleet_session_serves_cache_hits_without_workers(self, tmp_path):
        root = tmp_path / "shared"
        with Session(cache_dir=root, store="object", env={}) as warm:
            warm.run(GRID)
        with Session(
            cache_dir=root, store="object", fleet=1, env={},
        ) as session:
            handle = session.submit(GRID)
            # everything was cached: nothing to enqueue, no workers spawned
            assert handle._batch is None
            grid = handle.result()
            assert session.engine.fleet_points == 0
            assert session.engine.disk_hits == 2
            assert grid.get("nasa7", "ooo") is not None
