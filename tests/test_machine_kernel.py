"""The component-based machine kernel and the machine-model registry.

Everything here is auto-parameterised over *all* registered machines via
:func:`repro.core.machines.machine_names` — a newly registered model is
covered by the snapshot/restore round-trip, digest-stability, reset and
component-contract batteries without touching this file.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import machine_config
from repro.core.machines import create_run, get_machine_model, machine_names
from repro.machine.component import state_digest
from repro.workloads.registry import get_workload

MACHINES = machine_names()

#: a short but non-trivial prefix of a real workload trace
TRACE = get_workload("trfd", "tiny").trace()


def _fresh_run(name):
    model = get_machine_model(name)
    return model.factory(model.params_type(), TRACE)


class TestRegistryParameterisedRoundTrips:
    @pytest.mark.parametrize("name", MACHINES)
    def test_snapshot_restore_round_trips_mid_run(self, name):
        """snapshot → restore on a fresh run resumes bit-identically."""
        cut = len(TRACE) // 2
        full = _fresh_run(name)
        full.run_slice(TRACE.instructions)
        expected = full.finalise().to_dict()

        first = _fresh_run(name)
        first.run_slice(TRACE.instructions[:cut])
        state = json.loads(json.dumps(first.snapshot()))  # force JSON types

        second = _fresh_run(name)
        second.restore(state)
        second.run_slice(TRACE.instructions[cut:])
        assert second.finalise().to_dict() == expected

    @pytest.mark.parametrize("name", MACHINES)
    def test_snapshot_is_stable_under_restore(self, name):
        """restore(snapshot()) is the identity on the snapshot itself."""
        run = _fresh_run(name)
        run.run_slice(TRACE.instructions[: len(TRACE) // 3])
        state = run.snapshot()
        twin = _fresh_run(name)
        twin.restore(json.loads(json.dumps(state)))
        assert twin.snapshot() == state

    @pytest.mark.parametrize("name", MACHINES)
    def test_digest_stability(self, name):
        """Digests are deterministic and survive a JSON round-trip."""
        run = _fresh_run(name)
        run.run_slice(TRACE.instructions[:100])
        twin = _fresh_run(name)
        twin.restore(json.loads(json.dumps(run.snapshot())))
        assert run.digest() == twin.digest()
        assert run.digest() == run.digest()
        # advancing the machine must change the digest
        run.run_slice(TRACE.instructions[100:110])
        assert run.digest() != twin.digest()

    @pytest.mark.parametrize("name", MACHINES)
    def test_reset_returns_to_fresh_state(self, name):
        run = _fresh_run(name)
        run.run_slice(TRACE.instructions[:120])
        run.reset()
        fresh = _fresh_run(name)
        assert run.snapshot() == fresh.snapshot()
        assert run.digest() == fresh.digest()


class TestComponentContract:
    @pytest.mark.parametrize("name", MACHINES)
    def test_every_component_satisfies_the_contract(self, name):
        """snapshot/restore/reset/digest on every registered component."""
        run = _fresh_run(name)
        components = run.components
        assert components, f"{name} declares no components"
        for comp_name, component in components.items():
            if component is None:  # optional component not instantiated
                continue
            for method in ("snapshot", "restore", "reset", "digest"):
                assert callable(getattr(component, method, None)), (
                    f"{name}.{comp_name} lacks {method}()"
                )

    @pytest.mark.parametrize("name", MACHINES)
    def test_component_snapshots_compose_the_machine_snapshot(self, name):
        """The machine snapshot is derived from the component registry."""
        run = _fresh_run(name)
        run.run_slice(TRACE.instructions[:80])
        state = run.snapshot()
        assert state["kind"] == run.KIND
        for comp_name, component in run.components.items():
            if component is None:
                assert state[comp_name] is None
            else:
                assert state[comp_name] == component.snapshot()

    @pytest.mark.parametrize("name", MACHINES)
    def test_component_digests_are_canonical(self, name):
        """Equal snapshots digest equally across distinct instances."""
        run = _fresh_run(name)
        twin = _fresh_run(name)
        for comp_name, component in run.components.items():
            if component is None:
                continue
            other = twin.components[comp_name]
            assert component.digest() == other.digest(), comp_name
            assert component.digest() == state_digest(component.snapshot())

    @pytest.mark.parametrize("name", MACHINES)
    def test_dispatch_covers_the_trace(self, name):
        """Every instruction kind in a real trace has a handler."""
        run = _fresh_run(name)
        handlers = getattr(run, "_handlers", None)
        if handlers is None:
            pytest.skip("model is not built on the staged kernel")
        default = run._default_handler
        for dyn in TRACE.instructions:
            assert handlers.get(dyn.kind, default) is not None


class TestMachineConfigResolution:
    def test_every_registered_machine_has_a_default_config(self):
        for name in MACHINES:
            config = machine_config(name)
            assert config.params is not None

    def test_machine_config_resolves_standard_names_too(self):
        assert machine_config("ooo-late").name == "ooo-late"

    def test_unknown_machine_rejected(self):
        from repro.common.errors import ReproError

        with pytest.raises(ReproError):
            machine_config("warp-drive")


class TestInOrderIntermediate:
    """The registered third machine: in-order issue + renaming."""

    def test_params_round_trip_under_their_own_kind(self):
        from repro.common.params import params_from_dict, params_to_dict
        from repro.machine.inorder import InOrderParams

        params = InOrderParams(num_phys_vregs=32).with_memory_latency(7)
        payload = json.loads(json.dumps(params_to_dict(params)))
        assert payload["kind"] == "inorder"
        rebuilt = params_from_dict(payload)
        assert type(rebuilt) is InOrderParams
        assert rebuilt == params

    def test_issue_is_in_program_order(self):
        """No instruction may begin execution before an older one."""
        from repro.machine.inorder import _InOrderRun, InOrderParams

        starts = []

        class Probe(_InOrderRun):
            def retire(self, dyn, ctx, result):
                starts.append(result.start)
                super().retire(dyn, ctx, result)

        run = Probe(InOrderParams(), TRACE)
        run.run_slice(TRACE.instructions[:300])
        assert starts == sorted(starts)
        # single issue per cycle: strictly increasing
        assert all(b > a for a, b in zip(starts, starts[1:], strict=False))


class TestMinimalRegisteredMachine:
    """A third-party machine with a minimal params dataclass (no nested
    latency/memory blocks) must survive the engine's serialisation path."""

    @pytest.fixture(scope="class")
    def registered(self):
        from dataclasses import dataclass

        from repro.api import MachineModel, register_machine
        from repro.common.stats import SimStats

        @dataclass(frozen=True)
        class FlatParams:
            cost_per_instruction: int = 2

        class FlatRun:
            def __init__(self, params, trace):
                self.params = params
                self.cycles = 0

            def run_slice(self, instructions):
                for _ in instructions:
                    self.cycles += self.params.cost_per_instruction

            def finalise(self):
                stats = SimStats()
                stats.cycles = self.cycles
                return stats

            def snapshot(self):
                return {"kind": "kernel-test-flat", "cycles": self.cycles}

            def restore(self, state):
                self.cycles = int(state["cycles"])

        model = register_machine(MachineModel(
            name="kernel-test-flat",
            params_type=FlatParams,
            factory=lambda params, trace: FlatRun(params, trace),
            snapshot_kind="kernel-test-flat",
        ))
        yield model
        # both registries are process-global; drop the stub so registry-
        # driven tests elsewhere keep seeing only the real machines
        from repro.common import params as params_module
        from repro.core import machines as machines_module

        machines_module._REGISTRY.pop("kernel-test-flat", None)
        params_module._PARAMS_KINDS.pop("kernel-test-flat", None)

    def test_params_round_trip_without_latency_blocks(self, registered):
        from repro.common.params import params_from_dict, params_to_dict

        params = registered.params_type(cost_per_instruction=3)
        payload = json.loads(json.dumps(params_to_dict(params)))
        assert payload == {"kind": "kernel-test-flat", "cost_per_instruction": 3}
        assert params_from_dict(payload) == params

    def test_engine_grid_and_store_round_trip(self, registered, tmp_path):
        from repro.api import MachineConfig, RunRequest, Session

        config = MachineConfig("kernel-test-flat", registered.params_type())
        with Session(cache_dir=str(tmp_path)) as session:
            grid = session.run(RunRequest(workloads=("trfd",),
                                          configs=(config,), scale="small"))
            first = grid.get("trfd", config).cycles
        # a second session must read the persisted result back
        with Session(cache_dir=str(tmp_path)) as session:
            again = session.result("trfd", config, scale="small")
            assert again.cycles == first
            assert session.engine.simulated == 0

    def test_corrupt_payload_raises_configuration_error(self, registered):
        from repro.common.errors import ConfigurationError
        from repro.common.params import params_from_dict

        with pytest.raises(ConfigurationError):
            params_from_dict({"kind": "kernel-test-flat", "no_such_field": 1})


def test_custom_machine_example_runs():
    """The worked third-party registration example must keep working."""
    example = Path(__file__).resolve().parent.parent / "examples" / "custom_machine.py"
    result = subprocess.run(
        [sys.executable, str(example), "dyfesm"],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "bit-identical by exact replay" in result.stdout
