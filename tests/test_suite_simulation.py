"""Cross-machine consistency checks over the whole benchmark suite.

Runs every workload (at the cheap ``tiny`` scale) through both simulators
and checks the invariants that must hold for any program, plus the headline
relationships of the paper at suite level.
"""

import pytest

from repro.common.params import CommitModel, LoadElimination
from repro.core import ooo_config, reference_config, run_cached
from repro.workloads import WORKLOAD_NAMES

SCALE = "tiny"


def _ref(name):
    return run_cached(name, reference_config(), scale=SCALE)


def _ooo(name, **kwargs):
    return run_cached(name, ooo_config(**kwargs), scale=SCALE)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestPerProgramConsistency:
    def test_same_work_on_both_machines(self, name):
        ref = _ref(name)
        ooo = _ooo(name)
        assert ref.stats.vector_operations == ooo.stats.vector_operations
        assert ref.stats.vector_instructions == ooo.stats.vector_instructions
        assert ref.stats.traffic.total_ops == ooo.stats.traffic.total_ops

    def test_ooo_is_not_slower(self, name):
        assert _ooo(name).cycles <= _ref(name).cycles * 1.02

    def test_time_accounting(self, name):
        for result in (_ref(name), _ooo(name)):
            stats = result.stats
            assert stats.cycles > 0
            assert stats.address_port_busy_cycles <= stats.cycles
            assert sum(stats.state_breakdown().values()) == stats.cycles
            assert 0.0 <= stats.memory_port_idle_fraction() <= 1.0

    def test_ideal_is_a_lower_bound(self, name):
        ref = _ref(name)
        assert ref.stats.ideal_cycles() <= ref.cycles
        assert ref.stats.ideal_cycles() <= _ooo(name, phys_vregs=64).cycles

    def test_register_sweep_monotone(self, name):
        cycles = [_ooo(name, phys_vregs=regs).cycles for regs in (9, 16, 64)]
        assert cycles[0] >= cycles[1] >= cycles[2]

    def test_late_commit_never_faster(self, name):
        early = _ooo(name, phys_vregs=16)
        late = _ooo(name, phys_vregs=16, commit_model=CommitModel.LATE)
        assert late.cycles >= early.cycles * 0.999

    def test_load_elimination_conserves_requests(self, name):
        baseline = _ooo(name, phys_vregs=32, commit_model=CommitModel.LATE)
        vle = _ooo(name, phys_vregs=32, commit_model=CommitModel.LATE,
                   load_elimination=LoadElimination.SLE_VLE)
        removed = vle.stats.traffic.total_eliminated_ops
        assert vle.stats.traffic.total_ops + removed == baseline.stats.traffic.total_ops
        assert vle.cycles <= baseline.cycles * 1.05

    def test_port_idle_not_worse_out_of_order(self, name):
        ref = _ref(name)
        ooo = _ooo(name, phys_vregs=16)
        assert ooo.stats.memory_port_idle_fraction() <= \
            ref.stats.memory_port_idle_fraction() + 0.02


class TestSuiteLevelClaims:
    def test_speedup_band_at_16_registers(self):
        speedups = [
            _ooo(name, phys_vregs=16).speedup_over(_ref(name)) for name in WORKLOAD_NAMES
        ]
        # Every program improves noticeably; the best programs approach ~2x.
        assert min(speedups) > 1.1
        assert max(speedups) < 2.5

    def test_trfd_is_among_the_biggest_winners(self):
        speedups = {
            name: _ooo(name, phys_vregs=16).speedup_over(_ref(name))
            for name in WORKLOAD_NAMES
        }
        ranked = sorted(speedups, key=speedups.get, reverse=True)
        assert "trfd" in ranked[:3]

    def test_spill_bound_programs_lead_load_elimination(self):
        gains = {}
        for name in WORKLOAD_NAMES:
            baseline = _ooo(name, phys_vregs=32, commit_model=CommitModel.LATE)
            vle = _ooo(name, phys_vregs=32, commit_model=CommitModel.LATE,
                       load_elimination=LoadElimination.SLE_VLE)
            gains[name] = vle.speedup_over(baseline)
        ranked = sorted(gains, key=gains.get, reverse=True)
        assert set(ranked[:2]) <= {"trfd", "dyfesm", "bdna"}

    def test_branch_predictor_learns_the_loops(self):
        for name in ("swm256", "trfd"):
            stats = _ooo(name, phys_vregs=16).stats
            assert stats.branches_predicted > 0
            assert stats.branch_mispredictions / stats.branches_predicted < 0.5
