"""Fault-injection tests for the fleet worker (:mod:`repro.fleet.worker`).

These tests pin the crash-recovery contract with *real* process faults:

* a worker SIGKILLed mid-lease loses the lease to expiry; the task is
  reclaimed and a second worker re-runs it to a byte-identical result;
* SIGTERM drains gracefully — the worker finishes, releases and exits 0;
* a poisoned task (undecodable / unsimulatable) burns its retry budget and
  lands in the dead-letter prefix instead of wedging the queue.

Subprocess tests use a medium-scale point (~1 s of simulation) so the
"mid-lease" window is wide enough to hit deterministically; in-process
tests use an injected queue with ``claim_grace=0`` for speed.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.config import get_config
from repro.core.objectstore import ObjectStoreBackend
from repro.core.runner import result_payload
from repro.core.simulator import simulate_point
from repro.fleet.queue import LeaseQueue, TaskState
from repro.fleet.tasks import FleetTask
from repro.fleet.worker import Worker

REPO_ROOT = Path(__file__).resolve().parents[1]

#: generous ceiling on every wait loop; the loops exit as soon as the
#: condition holds, so the ceiling only matters on an overloaded host
DEADLINE_S = 60.0


def worker_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    return env


def spawn_worker(store_root: Path, *extra: str) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro.cli", "worker",
        "--store-root", str(store_root), "--poll", "0.05", *extra,
    ]
    return subprocess.Popen(
        command, env=worker_env(), cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def wait_until(predicate, what: str, deadline_s: float = DEADLINE_S) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.002)
    raise AssertionError(f"timed out waiting for {what}")


def submit_point(store_root: Path, workload: str, scale: str) -> tuple[LeaseQueue, FleetTask]:
    backend = ObjectStoreBackend(store_root)
    queue = LeaseQueue(backend.objects)
    task = FleetTask(workload=workload, scale=scale, config=get_config("reference"))
    assert queue.submit(task.task_id(), task.to_payload()) is True
    return queue, task


class TestSigkillRecovery:
    def test_killed_worker_loses_lease_and_task_reruns_byte_identically(
        self, tmp_path
    ):
        # a ~1 s point: the worker is guaranteed to be mid-simulation (and
        # therefore mid-lease) when we observe the CLAIMED state
        queue, task = submit_point(tmp_path, "tomcatv", "medium")
        task_id = task.task_id()

        process = spawn_worker(tmp_path, "--lease-ttl", "0.75")
        try:
            wait_until(
                lambda: queue.state(task_id) & TaskState.CLAIMED,
                "the worker to claim the task",
            )
            assert not queue.state(task_id) & TaskState.DONE
            process.send_signal(signal.SIGKILL)  # no drain, no release
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
            process.communicate()
        assert process.returncode == -signal.SIGKILL

        # the orphaned lease expires on the wall clock; reap reclaims it
        wait_until(
            lambda: not queue.state(task_id) & TaskState.CLAIMED,
            "the orphaned lease to expire",
        )
        swept = queue.reap()
        assert swept["reclaimed"] == 1
        assert queue.state(task_id) == TaskState.PENDING | TaskState.FAILED

        # a second worker (in-process: fast and deterministic) re-runs it
        second = Worker(tmp_path, worker_id="second", max_tasks=1, poll_s=0.05)
        assert second.run() == 1
        assert second.completed == 1
        assert queue.state(task_id) & TaskState.DONE

        # ... to the byte-identical result object the engine's own result
        # store would have written locally
        reference = simulate_point(task.workload, task.scale, task.config)
        expected = json.dumps(result_payload(task.point(), reference)).encode("utf-8")
        backend = ObjectStoreBackend(tmp_path)
        stored = backend.objects.get(backend._object_key(task_id))
        assert stored == expected


class TestGracefulDrain:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        queue, task = submit_point(tmp_path, "nasa7", "small")
        task_id = task.task_id()

        process = spawn_worker(tmp_path, "--lease-ttl", "30")
        try:
            # claimed or already done — either way the worker holds no
            # un-drainable state when the signal lands
            wait_until(
                lambda: queue.state(task_id)
                & (TaskState.CLAIMED | TaskState.DONE),
                "the worker to pick up the task",
            )
            process.send_signal(signal.SIGTERM)
            _stdout, stderr = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stderr
        # the in-flight task was finished, not abandoned
        assert queue.state(task_id) & TaskState.DONE
        assert queue.counts()["claimed"] == 0

    def test_max_tasks_worker_exits_on_its_own(self, tmp_path):
        queue, task = submit_point(tmp_path, "nasa7", "small")
        process = spawn_worker(tmp_path, "--max-tasks", "1", "--lease-ttl", "30")
        _stdout, stderr = process.communicate(timeout=DEADLINE_S)
        assert process.returncode == 0, stderr
        assert queue.state(task.task_id()) & TaskState.DONE
        assert "1 completed" in stderr


class TestPoisonedTasks:
    def poisoned_queue(self, tmp_path, retry_budget: int = 2) -> LeaseQueue:
        backend = ObjectStoreBackend(tmp_path)
        return LeaseQueue(
            backend.objects, retry_budget=retry_budget, claim_grace=0.0)

    def test_unsimulatable_task_dead_letters_after_retry_budget(self, tmp_path):
        queue = self.poisoned_queue(tmp_path)
        task = FleetTask(
            workload="no-such-workload", scale="small",
            config=get_config("reference"),
        )
        task_id = task.task_id()
        queue.submit(task_id, task.to_payload())

        worker = Worker(
            tmp_path, worker_id="poison-eater", queue=queue,
            poll_s=0.05, idle_timeout=0.2,
        )
        executed = worker.run()  # exits via idle timeout once buried
        assert executed == 2  # exactly the retry budget, then never again
        assert worker.failed == 2 and worker.completed == 0
        assert queue.state(task_id) == TaskState.DEAD | TaskState.FAILED

        letters = queue.dead_letters()
        assert task_id in letters
        assert letters[task_id]["failures"] == 2

    def test_undecodable_payload_is_failed_not_crashed(self, tmp_path):
        queue = self.poisoned_queue(tmp_path, retry_budget=1)
        queue.submit("nonsense", {"version": 999, "kind": "mystery"})
        worker = Worker(
            tmp_path, worker_id="confused", queue=queue,
            poll_s=0.05, idle_timeout=0.2,
        )
        assert worker.run() == 1
        assert worker.failed == 1
        assert queue.state("nonsense") == TaskState.DEAD | TaskState.FAILED
        reason = queue.dead_letters()["nonsense"]["reason"]
        assert "undecodable task" in reason


class TestWorkerConstruction:
    def test_worker_ids_are_unique_by_default(self, tmp_path):
        first = Worker(tmp_path)
        second = Worker(tmp_path)
        assert first.worker_id != second.worker_id

    def test_validation(self, tmp_path):
        from repro.common.errors import ReproError

        with pytest.raises(ReproError, match="max_tasks"):
            Worker(tmp_path, max_tasks=0)
        with pytest.raises(ReproError, match="poll_s"):
            Worker(tmp_path, poll_s=0.0)

    def test_summary_counts(self, tmp_path):
        worker = Worker(tmp_path, worker_id="w-test")
        assert "w-test" in worker.summary()
        assert "0 completed" in worker.summary()
