"""Differential regression sweep: OoO machine versus the in-order reference.

Every registered workload is run once at the ``small`` scale (the scale the
paper harness uses) through both simulators; the results are cached at
module scope so each (workload, machine) pair is simulated exactly once no
matter how many invariants are checked against it.

The invariants are the cross-machine contracts every refactor must
preserve: both machines execute the identical dynamic instruction stream
(same trace), the out-of-order machine never loses to the in-order
reference, and its stall accounting stays physically sensible.
"""

import functools

import pytest

from repro.core.config import inorder_config, ooo_config, reference_config
from repro.core.simulator import run
from repro.workloads.registry import WORKLOAD_NAMES

SCALE = "small"


@functools.lru_cache(maxsize=None)
def _pair(name):
    """Simulate ``name`` on both machines once per test session."""
    reference = run(name, reference_config(), scale=SCALE)
    ooo = run(name, ooo_config(), scale=SCALE)
    return reference, ooo


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestReferenceVsOOODifferential:
    def test_identical_instruction_and_operation_counts(self, name):
        ref, ooo = (r.stats for r in _pair(name))
        assert ref.scalar_instructions == ooo.scalar_instructions
        assert ref.vector_instructions == ooo.vector_instructions
        assert ref.branch_instructions == ooo.branch_instructions
        assert ref.vector_operations == ooo.vector_operations
        assert ref.traffic.total_ops == ooo.traffic.total_ops

    def test_ooo_cycles_never_exceed_reference(self, name):
        reference, ooo = _pair(name)
        assert 0 < ooo.cycles <= reference.cycles

    def test_stall_statistics_are_non_negative_and_bounded(self, name):
        _, ooo = _pair(name)
        stats = ooo.stats
        lost = stats.lost_decode_cycles()
        assert all(cycles >= 0 for cycles in lost.values())
        # each individual stall source can never exceed total execution time
        assert all(cycles <= stats.cycles for cycles in lost.values())
        assert 0.0 <= stats.lost_decode_fraction()

    def test_reference_machine_reports_no_ooo_counters(self, name):
        reference, _ = _pair(name)
        stats = reference.stats
        assert stats.rename_stall_cycles == 0
        assert stats.rob_stall_cycles == 0
        assert stats.queue_stall_cycles == 0
        assert stats.loads_eliminated == 0

    def test_busy_intervals_fit_inside_execution(self, name):
        for result in _pair(name):
            stats = result.stats
            for unit in ("FU1", "FU2", "MEM"):
                assert 0 <= stats.unit_busy_cycles(unit) <= stats.cycles
            assert stats.address_port_busy_cycles <= stats.cycles


@functools.lru_cache(maxsize=None)
def _inorder(name):
    """Simulate ``name`` on the registered in-order+renaming intermediate."""
    return run(name, inorder_config(), scale=SCALE)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestMachineOrdering:
    """The registered ``inorder`` machine sits between the two extremes.

    Renaming alone must never hurt (reference >= inorder) and giving up
    out-of-order issue must never help (inorder >= ooo) — on every
    workload, the sanity ordering the machine-comparison exhibit (Table 4)
    rests on.
    """

    def test_reference_inorder_ooo_cycle_ordering(self, name):
        reference, ooo = _pair(name)
        inorder = _inorder(name)
        assert 0 < ooo.cycles <= inorder.cycles <= reference.cycles

    def test_inorder_executes_the_same_work(self, name):
        reference, _ = _pair(name)
        inorder = _inorder(name)
        ref_stats, ino_stats = reference.stats, inorder.stats
        assert ref_stats.scalar_instructions == ino_stats.scalar_instructions
        assert ref_stats.vector_instructions == ino_stats.vector_instructions
        assert ref_stats.branch_instructions == ino_stats.branch_instructions
        assert ref_stats.vector_operations == ino_stats.vector_operations
        assert ref_stats.traffic.total_ops == ino_stats.traffic.total_ops
