"""Unit tests for the memory system and the in-order reference simulator."""

import pytest

from repro.common.params import FunctionalUnitLatencies, MemoryParams, ReferenceParams
from repro.common.errors import SimulationError
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import areg, sreg, vreg
from repro.memory.system import MemorySystem
from repro.refsim.machine import ReferenceSimulator, simulate_reference
from repro.refsim.regfile import BankedVectorRegisterFile
from repro.trace.generator import generate_trace
from repro.trace.records import Trace


def _trace_of(instructions, name="t"):
    program = Program(name)
    block = program.add_block("entry")
    for instr in instructions:
        block.append(instr)
    return generate_trace(program)


def _vector_loop_trace(n_loads=2, vl=64, latency_ops=()):
    instrs = [Instruction(Opcode.LI, dest=areg(i), imm=0x1000 * (i + 1)) for i in range(4)]
    instrs.append(Instruction(Opcode.SETVL, imm=vl))
    for i in range(n_loads):
        instrs.append(Instruction(Opcode.VLOAD, dest=vreg(i), srcs=(areg(i),)))
    instrs.append(Instruction(Opcode.VADD, dest=vreg(6), srcs=(vreg(0), vreg(1))))
    for op in latency_ops:
        instrs.append(op)
    instrs.append(Instruction(Opcode.VSTORE, srcs=(vreg(6), areg(3))))
    return _trace_of(instrs)


class TestMemorySystem:
    def test_vector_load_timing(self):
        mem = MemorySystem(MemoryParams(latency=50))
        timing = mem.vector_load(10, 64)
        assert timing.start == 10
        assert timing.address_done == 74
        assert timing.data_ready == 10 + 50 + 64

    def test_vector_store_has_no_observed_latency(self):
        mem = MemorySystem(MemoryParams(latency=50))
        timing = mem.vector_store(5, 32)
        assert timing.data_ready == timing.address_done == 37

    def test_address_bus_serialises_requests(self):
        mem = MemorySystem(MemoryParams(latency=10))
        first = mem.vector_load(0, 64)
        second = mem.vector_load(0, 64)
        assert second.start >= first.address_done

    def test_scalar_accesses_share_the_bus(self):
        mem = MemorySystem(MemoryParams(latency=10), FunctionalUnitLatencies())
        mem.vector_load(0, 16)
        timing = mem.scalar_load(0)
        assert timing.start >= 16
        assert mem.busy_cycles == 17

    def test_request_accounting(self):
        mem = MemorySystem(MemoryParams())
        mem.vector_load(0, 8)
        mem.vector_store(0, 4)
        mem.scalar_store(0)
        assert mem.total_requests == 13


class TestBankedRegisterFile:
    def test_bank_mapping(self):
        rf = BankedVectorRegisterFile(8, 2, 2, 1)
        assert rf.bank_of(vreg(0)) == rf.bank_of(vreg(1)) == 0
        assert rf.bank_of(vreg(6)) == 3

    def test_non_vector_register_rejected(self):
        rf = BankedVectorRegisterFile(8, 2, 2, 1)
        with pytest.raises(ValueError):
            rf.bank_of(areg(0))

    def test_write_port_conflict_delays_second_writer(self):
        rf = BankedVectorRegisterFile(8, 2, 2, 1)
        assert rf.reserve_write(vreg(0), 0, 100) == 0
        # v1 shares v0's bank and there is a single write port per bank.
        assert rf.reserve_write(vreg(1), 0, 100) == 100
        # a register in another bank is unaffected
        assert rf.reserve_write(vreg(2), 0, 100) == 0

    def test_two_read_ports_per_bank(self):
        rf = BankedVectorRegisterFile(8, 2, 2, 1)
        assert rf.reserve_read(vreg(0), 0, 50) == 0
        assert rf.reserve_read(vreg(1), 0, 50) == 0
        assert rf.reserve_read(vreg(0), 0, 50) == 50


class TestReferenceSimulator:
    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            simulate_reference(Trace("empty"))

    def test_cycle_count_positive_and_deterministic(self):
        trace = _vector_loop_trace()
        first = simulate_reference(trace)
        second = simulate_reference(trace)
        assert first.cycles == second.cycles > 0

    def test_memory_latency_increases_execution_time(self):
        trace = _vector_loop_trace()
        fast = simulate_reference(trace, ReferenceParams().with_memory_latency(1))
        slow = simulate_reference(trace, ReferenceParams().with_memory_latency(100))
        assert slow.cycles > fast.cycles

    def test_no_load_chaining_exposes_latency(self):
        # The consumer of a load must wait for the load to complete entirely.
        trace = _vector_loop_trace(vl=32)
        params = ReferenceParams().with_memory_latency(80)
        stats = simulate_reference(trace, params)
        # lower bound: load address issue + latency + vl for the dependent add
        assert stats.cycles > 80 + 32

    def test_fu2_only_operations_serialise_on_fu2(self):
        instrs = [
            Instruction(Opcode.LI, dest=areg(0), imm=0x1000),
            Instruction(Opcode.SETVL, imm=64),
            Instruction(Opcode.VMUL, dest=vreg(2), srcs=(vreg(0), vreg(1))),
            Instruction(Opcode.VDIV, dest=vreg(5), srcs=(vreg(3), vreg(4))),
        ]
        stats = simulate_reference(_trace_of(instrs))
        assert stats.unit_busy_cycles("FU2") > stats.unit_busy_cycles("FU1")

    def test_independent_ops_use_both_units(self):
        instrs = [
            Instruction(Opcode.SETVL, imm=64),
            Instruction(Opcode.VADD, dest=vreg(2), srcs=(vreg(0), vreg(1))),
            Instruction(Opcode.VSUB, dest=vreg(5), srcs=(vreg(3), vreg(4))),
        ]
        stats = simulate_reference(_trace_of(instrs))
        assert stats.unit_busy_cycles("FU1") > 0
        assert stats.unit_busy_cycles("FU2") > 0

    def test_traffic_accounting(self):
        trace = _vector_loop_trace(n_loads=2, vl=16)
        stats = simulate_reference(trace)
        assert stats.traffic.vector_load_ops == 32
        assert stats.traffic.vector_store_ops == 16
        assert stats.address_port_busy_cycles == 48

    def test_state_breakdown_covers_all_cycles(self):
        stats = simulate_reference(_vector_loop_trace())
        assert sum(stats.state_breakdown().values()) == stats.cycles

    def test_instruction_counters(self):
        trace = _vector_loop_trace(n_loads=1, vl=8)
        stats = simulate_reference(trace)
        assert stats.vector_instructions == 3  # load, add, store
        assert stats.scalar_instructions == len(trace) - 3

    def test_chaining_beats_no_chaining(self):
        import dataclasses
        instrs = [
            Instruction(Opcode.SETVL, imm=128),
            Instruction(Opcode.VADD, dest=vreg(2), srcs=(vreg(0), vreg(1))),
            Instruction(Opcode.VMUL, dest=vreg(3), srcs=(vreg(2), vreg(1))),
            Instruction(Opcode.VSUB, dest=vreg(4), srcs=(vreg(3), vreg(0))),
        ]
        trace = _trace_of(instrs)
        chained = simulate_reference(trace, ReferenceParams())
        unchained = simulate_reference(
            trace, dataclasses.replace(ReferenceParams(), chain_fu_to_fu=False))
        assert chained.cycles < unchained.cycles

    def test_simulator_object_reusable(self):
        simulator = ReferenceSimulator()
        trace = _vector_loop_trace(vl=8)
        assert simulator.run(trace).cycles == simulator.run(trace).cycles
