"""Batched-kernel equivalence: SoA stepper == scalar dispatch, bit for bit.

The batched kernel (:mod:`repro.machine.batched`) pre-lowers a trace into
structure-of-arrays columns and steps each machine through a registered
per-machine segment loop; the scalar kernel is the per-instruction dispatch
table.  Their contract is *bit-identical* :class:`~repro.common.stats.SimStats`
and snapshots for every registered machine, on any instruction sequence —
including mid-trace slices, which is how the chunked simulator drives the
kernel.  Machines without a registered stepper must fall back to their own
``run_slice`` untouched (the bring-your-own-machine path).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.machines import get_machine_model, machine_names
from repro.machine.batched import (
    has_lowering,
    lowered_for,
    run_slice_batched,
    stepper_for,
)
from repro.workloads.registry import get_workload

MACHINES = machine_names()

#: traces of different shapes: vector-heavy, memory-heavy, scalar-mixed
TRACES = {
    name: get_workload(name, "tiny").trace()
    for name in ("trfd", "swm256", "tomcatv")
}


def _fresh_run(name, trace):
    model = get_machine_model(name)
    return model.factory(model.params_type(), trace)


def _finalised(machine):
    return machine.finalise().to_dict()


class TestEveryRegisteredMachine:
    """Full-trace equivalence, auto-parameterised over the registry."""

    @pytest.mark.parametrize("name", MACHINES)
    @pytest.mark.parametrize("workload", sorted(TRACES))
    def test_full_trace_stats_and_snapshot_identical(self, name, workload):
        trace = TRACES[workload]
        scalar = _fresh_run(name, trace)
        scalar.run_slice(trace)
        batched = _fresh_run(name, trace)
        run_slice_batched(batched, trace)
        assert _finalised(batched) == _finalised(scalar), (name, workload)
        assert batched.snapshot() == scalar.snapshot(), (name, workload)

    @pytest.mark.parametrize("name", MACHINES)
    def test_builtin_machines_have_a_registered_stepper(self, name):
        # the three shipped machines must take the fast path, not the
        # fallback — otherwise the bench acceptance silently measures
        # scalar against scalar
        assert has_lowering(_fresh_run(name, TRACES["trfd"]))

    @pytest.mark.parametrize("name", MACHINES)
    def test_state_carries_over_between_calls(self, name):
        # the chunked driver replays chunk after chunk through one machine;
        # interleaving kernels mid-trace must still land on the same state
        trace = TRACES["trfd"]
        cut = len(trace) // 2
        scalar = _fresh_run(name, trace)
        scalar.run_slice(trace)
        mixed = _fresh_run(name, trace)
        run_slice_batched(mixed, trace.instructions[:cut])
        mixed.run_slice(trace.instructions[cut:])
        assert _finalised(mixed) == _finalised(scalar), name


class TestArbitrarySlices:
    """Hypothesis: any contiguous slice of any trace, identical results."""

    @given(
        name=st.sampled_from(MACHINES),
        workload=st.sampled_from(sorted(TRACES)),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_slice_equivalence(self, name, workload, data):
        trace = TRACES[workload]
        start = data.draw(st.integers(min_value=0, max_value=len(trace) - 1))
        stop = data.draw(st.integers(min_value=start + 1, max_value=len(trace)))
        window = trace.instructions[start:stop]
        scalar = _fresh_run(name, trace)
        scalar.run_slice(window)
        batched = _fresh_run(name, trace)
        run_slice_batched(batched, window)
        assert _finalised(batched) == _finalised(scalar), (name, start, stop)
        assert batched.snapshot() == scalar.snapshot(), (name, start, stop)


class TestLoweringCache:
    def test_lowered_for_memoises_per_trace(self):
        trace = TRACES["trfd"]
        assert lowered_for(trace) is lowered_for(trace)

    def test_lowering_covers_the_whole_trace(self):
        trace = TRACES["swm256"]
        assert lowered_for(trace).n == len(trace.instructions)


class TestUnregisteredMachineFallback:
    """A machine with no registered stepper runs its own ``run_slice``."""

    @pytest.fixture()
    def scoreboard(self):
        # the shape of examples/custom_machine.py, without touching the
        # process-global registry: run_slice_batched dispatches on the
        # *class*, so an unregistered class exercises the fallback directly
        class Scoreboard:
            def __init__(self):
                self.cycles = 0
                self.calls = 0

            def run_slice(self, instructions):
                self.calls += 1
                for dyn in instructions:
                    self.cycles += max(dyn.vl, 1) if dyn.is_vector else 1

        return Scoreboard

    def test_fallback_delegates_to_run_slice(self, scoreboard):
        trace = TRACES["trfd"]
        assert stepper_for(scoreboard) is None
        direct = scoreboard()
        direct.run_slice(trace)
        via_batched = scoreboard()
        run_slice_batched(via_batched, trace)
        assert via_batched.cycles == direct.cycles
        assert via_batched.calls == 1  # one pass-through call, no lowering

    def test_custom_machine_example_runs_both_kernels(self):
        # the shipped example must keep working under kernel=batched —
        # its machine takes the fallback, the built-ins the fast path
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        env_src = str(repo / "src")
        proc = subprocess.run(
            [sys.executable, str(repo / "examples" / "custom_machine.py")],
            capture_output=True, text=True, timeout=600,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin",
                 "REPRO_KERNEL": "batched"},
        )
        assert proc.returncode == 0, proc.stderr
