"""Unit and property tests for the S3-style object store layers.

The generic :class:`~repro.core.objectstore.ObjectStore` quartet
(put/get/list/delete), key hygiene, crash-leftover sweeping, and the two
namespaces built on it: the ``object`` result-store backend (also covered
by the parametrised backend-contract battery in ``test_store_backends``)
and the object-backed chunk store.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ReproError
from repro.core.objectstore import (
    CHUNK_PREFIX,
    OBJECT_SUBDIR,
    RESULT_PREFIX,
    ObjectStore,
    ObjectStoreBackend,
)
from repro.parallel.chunkstore import (
    ChunkStore,
    ObjectChunkStore,
    chunk_fingerprint,
    make_chunk_store,
)

KEYS = st.lists(
    st.text(alphabet="abcdef0123456789", min_size=1, max_size=8),
    min_size=1, max_size=3,
).map("/".join)


class TestObjectStoreQuartet:
    def test_put_get_roundtrip(self, tmp_path):
        store = ObjectStore(tmp_path)
        store.put("results/ab/abcd.json", b"payload")
        assert store.get("results/ab/abcd.json") == b"payload"
        assert store.exists("results/ab/abcd.json")

    def test_get_missing_returns_none(self, tmp_path):
        assert ObjectStore(tmp_path).get("nope/missing") is None

    def test_put_overwrites_atomically(self, tmp_path):
        store = ObjectStore(tmp_path)
        store.put("k/v", b"old")
        store.put("k/v", b"new")
        assert store.get("k/v") == b"new"
        assert not list(tmp_path.rglob(".*.tmp"))

    def test_list_is_sorted_and_prefix_scoped(self, tmp_path):
        store = ObjectStore(tmp_path)
        store.put("results/bb/2.json", b"2")
        store.put("results/aa/1.json", b"1")
        store.put("chunks/aa/3.json", b"3")
        assert list(store.list("results")) == [
            "results/aa/1.json", "results/bb/2.json"]
        assert list(store.list()) == [
            "chunks/aa/3.json", "results/aa/1.json", "results/bb/2.json"]

    def test_list_skips_temp_files(self, tmp_path):
        store = ObjectStore(tmp_path)
        store.put("ns/entry", b"x")
        (tmp_path / "ns" / ".entry.123.tmp").write_bytes(b"partial")
        assert list(store.list("ns")) == ["ns/entry"]
        assert store.sweep_temp("ns") == 1

    def test_delete_reports_existence(self, tmp_path):
        store = ObjectStore(tmp_path)
        store.put("a/b", b"x")
        assert store.delete("a/b") is True
        assert store.delete("a/b") is False
        assert store.get("a/b") is None

    @pytest.mark.parametrize("bad", ["", "../escape", "a//b", "a/./b", "a/../b"])
    def test_traversal_keys_rejected(self, tmp_path, bad):
        store = ObjectStore(tmp_path)
        with pytest.raises(ReproError, match="invalid object key"):
            store.put(bad, b"x")

    @given(key=KEYS, data=st.binary(max_size=64))
    def test_roundtrip_property(self, tmp_path_factory, key, data):
        store = ObjectStore(tmp_path_factory.mktemp("objstore"))
        store.put(key, data)
        assert store.get(key) == data
        assert key in list(store.list())
        assert store.delete(key) is True
        assert store.get(key) is None

    @given(keys=st.lists(KEYS, min_size=1, max_size=10, unique=True))
    def test_list_order_is_full_key_lexicographic(self, tmp_path_factory, keys):
        # the documented backend contract: list() yields keys sorted by the
        # complete "/"-joined key string (S3 ListObjects order), independent
        # of directory enumeration order or Path's per-component ordering --
        # the fleet's claim-race winner depends on every process agreeing
        store = ObjectStore(tmp_path_factory.mktemp("objstore"))
        # drop keys that are directory-prefixes of other keys (a filesystem
        # root can't hold both file "a" and directory "a/")
        flat = [
            key for key in keys
            if not any(
                other != key and other.startswith(key + "/") for other in keys
            )
        ]
        for key in reversed(flat):  # insertion order != sorted order
            store.put(key, key.encode())
        assert list(store.list()) == sorted(set(flat))

    def test_list_orders_by_key_string_not_path_parts(self, tmp_path):
        # "a-b" < "a/c" as strings ("-" < "/"), but Path ordering compares
        # components and would put ("a", "c") before ("a-b",)
        store = ObjectStore(tmp_path)
        store.put("a/c", b"deep")
        store.put("a-b", b"flat")
        assert list(store.list()) == ["a-b", "a/c"]


class TestObjectBackendLayout:
    def test_results_live_under_the_results_prefix(self, tmp_path):
        backend = ObjectStoreBackend(tmp_path)
        assert backend.kind == "object"
        assert backend._object_key("ab" * 32).startswith(f"{RESULT_PREFIX}/ab/")
        assert str(tmp_path / OBJECT_SUBDIR) in backend.describe()

    def test_gc_sweeps_undecodable_objects_and_temp_files(self, tmp_path):
        backend = ObjectStoreBackend(tmp_path)
        backend.objects.put("results/zz/zz123.json", b"{not json")
        (tmp_path / OBJECT_SUBDIR / RESULT_PREFIX / "zz" / ".x.tmp").write_bytes(b"")
        kept, evicted = backend.gc()
        assert kept == 0 and evicted == 2

    def test_gc_converges_on_misplaced_objects(self, tmp_path):
        # a foreign/partially-synced object whose shard dir does not match
        # its name must be deleted for real, not merely counted, so a
        # second gc reports a clean store
        backend = ObjectStoreBackend(tmp_path)
        backend.objects.put("results/xx/stray.json", b"{corrupt")
        assert backend.gc() == (0, 1)
        assert backend.objects.get("results/xx/stray.json") is None
        assert backend.gc() == (0, 0)


class TestObjectChunkNamespace:
    def _key(self):
        return chunk_fingerprint("f" * 64, 300, 1, 300, 600, "digest")

    def test_roundtrip_shares_the_bucket_root(self, tmp_path):
        store = ObjectChunkStore(tmp_path)
        key = self._key()
        store.put(key, {"kind": "ref", "horizon": 7}, info={"index": 1})
        again = ObjectChunkStore(tmp_path)
        assert again.get(key) == {"kind": "ref", "horizon": 7}
        assert again.hits == 1
        listed = list(ObjectStore(tmp_path / OBJECT_SUBDIR).list(CHUNK_PREFIX))
        assert listed == [f"{CHUNK_PREFIX}/{key[:2]}/{key}.json"]

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        store = ObjectChunkStore(tmp_path)
        key = self._key()
        store.put(key, {"kind": "ref"})
        path = (tmp_path / OBJECT_SUBDIR / CHUNK_PREFIX / key[:2]
                / f"{key}.json")
        path.write_text("{truncat", encoding="utf-8")
        assert store.get(key) is None
        assert not path.is_file()  # dropped, will re-speculate

    def test_gc_counts(self, tmp_path):
        store = ObjectChunkStore(tmp_path)
        store.put(self._key(), {"kind": "ref"})
        bad = chunk_fingerprint("e" * 64, 300, 0, 0, 300, "other")
        store.objects.put(f"{CHUNK_PREFIX}/{bad[:2]}/{bad}.json", b"junk")
        assert store.gc() == (1, 1)

    def test_make_chunk_store_dispatch(self, tmp_path):
        assert isinstance(make_chunk_store(tmp_path, "object"), ObjectChunkStore)
        assert isinstance(make_chunk_store(tmp_path, "json"), ChunkStore)
        assert isinstance(make_chunk_store(tmp_path, None), ChunkStore)
        assert isinstance(make_chunk_store(tmp_path, "sqlite"), ChunkStore)

    def test_chunked_simulation_accepts_object_chunk_store(self, tmp_path):
        from repro.core.config import get_config
        from repro.core.simulator import simulate_point, simulate_point_chunked

        config = get_config("reference")
        mono = simulate_point("nasa7", "small", config)
        store = ObjectChunkStore(tmp_path)
        chunked, report = simulate_point_chunked(
            "nasa7", "small", config, chunk_size=300, chunk_store=store,
            speculate="always",
        )
        assert mono.to_dict() == chunked.to_dict()
        assert store.stored >= 1
        # a second pass resumes from the object-store chunks
        rerun, report2 = simulate_point_chunked(
            "nasa7", "small", config, chunk_size=300, chunk_store=store,
            speculate="always",
        )
        assert rerun.to_dict() == mono.to_dict()
        assert report2.cache_hits >= 1
