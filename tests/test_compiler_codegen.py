"""Unit tests for code generation (IR → virtual-register vector code)."""

import pytest

from repro.common.errors import CompilationError
from repro.compiler import ir
from repro.compiler.codegen import (
    DATA_SEGMENT_BASE,
    CodeGenerator,
    SPILL_BASE_REGISTER,
    VirtReg,
    generate_code,
    layout_memory,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import RegClass


def _loop_kernel(statements, trip=256, name="k", max_vl=128):
    kernel = ir.Kernel(name)
    kernel.add(ir.VectorLoop("loop", trip=trip, statements=tuple(statements), max_vl=max_vl))
    return kernel


def _all_instructions(code):
    for block in code.blocks:
        yield from block.instructions


def _opcodes(code):
    return [instr.opcode for instr in _all_instructions(code)]


class TestMemoryLayout:
    def test_arrays_laid_out_disjoint_and_aligned(self):
        a = ir.Array("a", 100)
        b = ir.Array("b", 50)
        layout = layout_memory([a, b])
        base_a = layout.base_of(a)
        base_b = layout.base_of(b)
        assert base_a == DATA_SEGMENT_BASE
        assert base_b >= base_a + a.bytes
        assert base_b % 64 == 0
        assert layout.spill_base >= base_b + b.bytes

    def test_unknown_array_rejected(self):
        layout = layout_memory([])
        with pytest.raises(CompilationError):
            layout.base_of(ir.Array("ghost", 8))

    def test_spill_slots_are_disjoint(self):
        layout = layout_memory([ir.Array("a", 8)])
        first = layout.allocate_spill_slot(1024)
        second = layout.allocate_spill_slot(1024)
        assert second >= first + 1024


class TestVectorLoopLowering:
    def test_axpy_structure(self):
        a, b, c = (ir.Array(n, 256) for n in "abc")
        code = generate_code(_loop_kernel(
            [ir.VectorAssign(c.ref(), a.ref() * ir.ScalarOperand("alpha", 2.0) + b.ref())]))
        ops = _opcodes(code)
        assert Opcode.SETVL in ops
        assert ops.count(Opcode.VLOAD) == 2
        assert Opcode.VSMUL in ops
        assert Opcode.VADD in ops
        assert Opcode.VSTORE in ops
        assert Opcode.BR in ops

    def test_spill_pointer_initialised_first(self):
        a = ir.Array("a", 64)
        code = generate_code(_loop_kernel([ir.VectorAssign(a.ref(), a.ref() + 1.0)]))
        first = code.blocks[0].instructions[0]
        assert first.opcode is Opcode.LI and first.dest == SPILL_BASE_REGISTER

    def test_cse_of_repeated_loads(self):
        a, b = ir.Array("a", 128), ir.Array("b", 128)
        code = generate_code(_loop_kernel(
            [ir.VectorAssign(b.ref(), a.ref() * a.ref() + a.ref())]))
        assert _opcodes(code).count(Opcode.VLOAD) == 1

    def test_offsets_folded_into_immediates(self):
        a, b = ir.Array("a", 128), ir.Array("b", 128)
        code = generate_code(_loop_kernel(
            [ir.VectorAssign(b.ref(), a.ref(offset=1) - a.ref())]))
        loads = [i for i in _all_instructions(code) if i.opcode is Opcode.VLOAD]
        # Two loads of the same array at different offsets share one base
        # register and differ only in the immediate.
        assert len(loads) == 2
        assert loads[0].srcs == loads[1].srcs
        assert {instr.imm for instr in loads} == {None, 8}

    def test_strided_access_emits_setvs_and_strided_ops(self):
        a, b = ir.Array("a", 256), ir.Array("b", 256)
        code = generate_code(_loop_kernel(
            [ir.VectorAssign(b.ref(stride=2), a.ref(stride=2) + 1.0)], trip=100))
        ops = _opcodes(code)
        assert Opcode.SETVS in ops
        assert Opcode.VLOADS in ops
        assert Opcode.VSTORES in ops

    def test_gather_and_scatter(self):
        table = ir.Array("table", 512)
        idx = ir.Array("idx", 128)
        out = ir.Array("out", 128)
        kernel = _loop_kernel([
            ir.VectorAssign(out.ref(), table.gather(idx.ref()) * 2.0),
            ir.VectorAssign(table.gather(idx.ref()), out.ref()),
        ], trip=128)
        code = generate_code(kernel)
        ops = _opcodes(code)
        assert Opcode.VGATHER in ops
        assert Opcode.VSCATTER in ops
        gather = next(i for i in _all_instructions(code) if i.opcode is Opcode.VGATHER)
        assert gather.region_bytes == table.bytes

    def test_divide_and_sqrt_selected(self):
        a, b = ir.Array("a", 64), ir.Array("b", 64)
        code = generate_code(_loop_kernel(
            [ir.VectorAssign(b.ref(), ir.sqrt(a.ref()) / (a.ref() + 1.0))]))
        ops = _opcodes(code)
        assert Opcode.VSQRT in ops and Opcode.VDIV in ops

    def test_select_lowered_to_vcmp_and_vmerge(self):
        a, b = ir.Array("a", 64), ir.Array("b", 64)
        code = generate_code(_loop_kernel([
            ir.VectorAssign(b.ref(), ir.where(ir.compare("gt", a.ref(), 0.0), a.ref(), 0.0)),
        ]))
        ops = _opcodes(code)
        assert Opcode.VCMP in ops and Opcode.VMERGE in ops

    def test_reduce_lowered_to_vsum(self):
        a = ir.Array("a", 64)
        code = generate_code(_loop_kernel([ir.Reduce(a.ref(), "total")]))
        ops = _opcodes(code)
        assert Opcode.VSUM in ops and Opcode.FADD in ops

    def test_max_vl_clamp_in_setvl(self):
        a = ir.Array("a", 64)
        code = generate_code(_loop_kernel(
            [ir.VectorAssign(a.ref(), a.ref() + 1.0)], trip=64, max_vl=32))
        setvl = next(i for i in _all_instructions(code) if i.opcode is Opcode.SETVL)
        assert setvl.imm == 32

    def test_virtual_registers_created(self):
        a = ir.Array("a", 64)
        code = generate_code(_loop_kernel([ir.VectorAssign(a.ref(), a.ref() + 1.0)]))
        assert code.virtual_counts[RegClass.V] > 0
        assert code.virtual_counts[RegClass.A] > 0
        assert any(isinstance(r, VirtReg) for i in _all_instructions(code)
                   for r in i.registers())


class TestOtherItems:
    def test_scalar_work_emits_scalar_ops(self):
        kernel = ir.Kernel("k")
        kernel.add(ir.ScalarWork("w", alu_ops=4, mul_ops=2, loads=3, stores=1))
        code = generate_code(kernel)
        ops = _opcodes(code)
        assert ops.count(Opcode.LOAD) == 3
        assert ops.count(Opcode.STORE) == 1
        assert ops.count(Opcode.FADD) == 4
        assert ops.count(Opcode.FMUL) == 2

    def test_outer_loop_emits_backedge(self):
        a = ir.Array("a", 64)
        inner = ir.VectorLoop("inner", trip=64,
                              statements=(ir.VectorAssign(a.ref(), a.ref() + 1.0),))
        kernel = ir.Kernel("k")
        kernel.add(ir.Loop("outer", 3, (inner,)))
        code = generate_code(kernel)
        branches = [i for i in _all_instructions(code) if i.opcode is Opcode.BR]
        assert len(branches) == 2  # strip-mine back-edge + outer back-edge

    def test_routine_called_once_emitted_once(self):
        a = ir.Array("a", 64)
        routine = ir.Routine("helper", (
            ir.VectorLoop("body", trip=64, statements=(ir.VectorAssign(a.ref(), a.ref() + 1.0),)),
        ))
        kernel = ir.Kernel("k")
        kernel.add(ir.Loop("outer", 2, (ir.CallRoutine(routine), ir.CallRoutine(routine))))
        code = generate_code(kernel)
        ops = _opcodes(code)
        assert ops.count(Opcode.CALL) == 2
        assert ops.count(Opcode.RET) == 2  # program end + one routine body

    def test_program_ends_with_ret_before_routines(self):
        a = ir.Array("a", 64)
        routine = ir.Routine("helper", (
            ir.VectorLoop("body", trip=64, statements=(ir.VectorAssign(a.ref(), a.ref() + 1.0),)),
        ))
        kernel = ir.Kernel("k")
        kernel.add(ir.CallRoutine(routine))
        code = generate_code(kernel)
        rets = [idx for idx, instr in enumerate(_all_instructions(code))
                if instr.opcode is Opcode.RET]
        assert len(rets) == 2

    def test_loop_depth_annotation(self):
        a = ir.Array("a", 64)
        inner = ir.VectorLoop("inner", trip=64,
                              statements=(ir.VectorAssign(a.ref(), a.ref() + 1.0),))
        kernel = ir.Kernel("k")
        kernel.add(ir.Loop("outer", 2, (inner,)))
        code = CodeGenerator(kernel).generate()
        depths = {block.label: block.depth for block in code.blocks}
        strip_label = next(label for label in depths if "strip" in label)
        assert depths[strip_label] == 2
