"""CLI surface of the chunked simulator and the repro.bench harness."""

import json

import pytest

from repro import bench
from repro.cli import main as cli_main
from repro.core.runner import set_engine


@pytest.fixture(autouse=True)
def _isolated_default_engine():
    set_engine(None)
    yield
    set_engine(None)


class TestSimulateCommand:
    def test_simulate_monolithic_text(self, capsys):
        assert cli_main(["simulate", "--program", "nasa7",
                         "--config", "reference"]) == 0
        out = capsys.readouterr().out
        assert "nasa7 on reference" in out
        assert "wall time" in out

    def test_simulate_chunked_json_matches_monolithic(self, capsys):
        assert cli_main(["simulate", "--program", "nasa7", "--config", "ooo",
                         "--format", "json"]) == 0
        mono = json.loads(capsys.readouterr().out)
        assert cli_main(["simulate", "--program", "nasa7", "--config", "ooo",
                         "--chunk-size", "300", "--format", "json"]) == 0
        chunked = json.loads(capsys.readouterr().out)
        assert chunked["result"]["stats"] == mono["result"]["stats"]
        assert chunked["chunked"]["chunks"] >= 1
        assert (chunked["chunked"]["accepted"] + chunked["chunked"]["spliced"]
                + chunked["chunked"]["replayed"]
                == chunked["chunked"]["chunks"])

    def test_simulate_rejects_unknown_program(self, capsys):
        assert cli_main(["simulate", "--program", "nope"]) == 2
        assert "unknown program" in capsys.readouterr().err

    def test_simulate_rejects_negative_chunk_size(self, capsys):
        assert cli_main(["simulate", "--program", "nasa7",
                         "--chunk-size", "-5"]) == 2
        assert "--chunk-size" in capsys.readouterr().err

    def test_simulate_rejects_unknown_config(self, capsys):
        assert cli_main(["simulate", "--program", "nasa7",
                         "--config", "warp-drive"]) == 2
        assert "unknown configuration" in capsys.readouterr().err


class TestRunAllChunked:
    def test_intra_jobs_run_all_byte_identical_exhibits(self, capsys):
        args = ["run-all", "--scale", "small", "--exhibits", "table2",
                "--programs", "nasa7,su2cor", "--format", "json"]
        assert cli_main(args) == 0
        mono = json.loads(capsys.readouterr().out)
        set_engine(None)
        assert cli_main(args + ["--intra-jobs", "2"]) == 0
        chunked = json.loads(capsys.readouterr().out)
        assert (json.dumps(chunked["exhibits"], sort_keys=True)
                == json.dumps(mono["exhibits"], sort_keys=True))
        assert chunked["engine"]["chunked"]["intra_jobs"] == 2

    def test_run_all_rejects_bad_intra_jobs(self, capsys):
        assert cli_main(["run-all", "--intra-jobs", "0"]) == 2
        assert "--intra-jobs" in capsys.readouterr().err


class TestBenchHarness:
    def test_bench_writes_document_and_check_passes(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        out = tmp_path / "out"
        rc = bench.main([
            "--scale", "small", "--programs", "nasa7",
            "--configs", "reference,ooo", "--repeat", "1",
            "--intra-jobs", "1", "--output", str(out),
            "--baseline", str(baseline), "--update-baseline", "--check",
        ])
        assert rc == 0
        documents = list(out.glob("BENCH_*.json"))
        assert len(documents) == 1
        doc = json.loads(documents[0].read_text())
        assert doc["schema"] == bench.BENCH_SCHEMA
        assert doc["points"] == 2
        assert doc["totals"]["all_equivalent"] is True
        for row in doc["results"]:
            assert row["equivalent"] is True
            assert set(row["wall_s"]) == {"monolithic", "chunked",
                                          "chunked_warm"}
            assert row["sim_cycles_per_s"]["monolithic"] > 0
        base = json.loads(baseline.read_text())
        assert set(base["aggregate"]) == {"chunked_over_mono",
                                          "chunked_warm_over_mono"}

    def test_bench_rejects_unknown_program(self, capsys):
        assert bench.main(["--programs", "nope"]) == 2

    def test_check_flags_equivalence_break_and_regression(self):
        document = {
            "results": [{
                "workload": "w", "config": "c", "equivalent": False,
                "wall_s": {"monolithic": 1.0, "chunked": 2.0,
                           "chunked_warm": 1.0},
            }],
        }
        baseline = {
            "allowed_regression": {"aggregate": 0.25, "per_point": 0.25},
            "aggregate": {"chunked_over_mono": 1.0},
            "entries": {"w/c": {"chunked_over_mono": 1.0}},
        }
        problems = bench.check_against_baseline(document, baseline)
        assert any("differs" in p for p in problems)
        assert any("regressed" in p for p in problems)

    def test_check_gates_cold_ratio_on_multicore_runs(self):
        document = {
            "host_cpus": 4, "intra_jobs": 2,
            "results": [{
                "workload": "w", "config": "c", "equivalent": True,
                "wall_s": {"monolithic": 1.0, "chunked": 1.5,
                           "chunked_warm": 0.5},
            }],
        }
        baseline = {
            "allowed_regression": {"aggregate": 1e9, "per_point": 1e9},
            "aggregate": {}, "entries": {},
        }
        problems = bench.check_against_baseline(document, baseline)
        assert any("not paying for itself" in p for p in problems)
        # the absolute cold gate only applies when the run had parallelism
        document["host_cpus"] = 1
        assert bench.check_against_baseline(document, baseline) == []

    def test_check_subset_run_skips_relative_aggregate_gate(self):
        # a --programs/--configs subset has a differently-weighted aggregate
        # than the committed full-grid baseline: gate it per point only
        document = {
            "results": [{
                "workload": "w", "config": "c", "equivalent": True,
                "wall_s": {"monolithic": 1.0, "chunked": 0.9,
                           "chunked_warm": 0.9},
            }],
        }
        baseline = {
            "allowed_regression": {"aggregate": 0.25, "per_point": 1e9},
            "aggregate": {"chunked_warm_over_mono": 0.5},
            "entries": {"w/c": {"chunked_warm_over_mono": 1.0},
                        "other/c": {"chunked_warm_over_mono": 0.4}},
        }
        assert bench.check_against_baseline(document, baseline) == []
        # same ratios on the full grid do trip the aggregate gate
        del baseline["entries"]["other/c"]
        problems = bench.check_against_baseline(document, baseline)
        assert any("regressed" in p for p in problems)

    def test_check_skips_sub_threshold_walls_per_point(self):
        document = {
            "results": [{
                "workload": "w", "config": "c", "equivalent": True,
                "wall_s": {"monolithic": 0.001, "chunked": 0.1,
                           "chunked_warm": 0.1},
            }],
        }
        baseline = {
            "allowed_regression": {"aggregate": 1e9, "per_point": 0.25},
            "aggregate": {},
            "entries": {"w/c": {"chunked_over_mono": 1.0}},
        }
        assert bench.check_against_baseline(document, baseline) == []
