"""Behavioural tests for the :mod:`repro.api` façade.

Covers the Session lifecycle, RunRequest grids, exhibit parity with the
CLI, the machine-model registry, the deprecation shims (old entry points
warn but stay behaviour-identical) and the chunk-worker trace locator.
"""

import json
import warnings

import pytest

from repro.api import (
    ExhibitSet,
    MachineModel,
    RunRequest,
    Session,
    Settings,
    create_run,
    get_machine_model,
    machine_names,
    model_for_params,
    register_machine,
)
from repro.common.errors import ReproError
from repro.common.params import OOOParams, ReferenceParams
from repro.core.config import get_config, ooo_config
from repro.core.runner import get_engine, set_engine
from repro.core.simulator import run as run_simulation


@pytest.fixture(autouse=True)
def _isolated_default_engine():
    set_engine(None)
    yield
    set_engine(None)


class TestSessionLifecycle:
    def test_context_manager_and_close(self):
        with Session() as session:
            assert session.store.describe() == "memory"
        with pytest.raises(ReproError, match="closed"):
            session.result("nasa7", "reference")

    def test_kwargs_resolve_like_settings(self, tmp_path):
        with Session(cache_dir=tmp_path, store="sqlite", jobs=2) as session:
            assert session.settings.store == "sqlite"
            assert session.engine.jobs == 2
            assert session.trace_store is not None

    def test_explicit_store_without_cache_dir_rejected(self):
        with pytest.raises(ReproError, match="requires a cache directory"):
            Session(store="sqlite")

    def test_env_default_store_without_cache_dir_is_memory(self, monkeypatch):
        from repro.core.store import STORE_ENV

        monkeypatch.setenv(STORE_ENV, "sqlite")
        with Session() as session:
            assert session.store.describe() == "memory"

    def test_memory_only_default_engine_tolerates_bogus_env_store(self, monkeypatch):
        # pre-Settings behaviour: without a cache dir the default engine
        # never consulted $REPRO_STORE, so a stale/typo'd value must not
        # break purely in-memory library use
        from repro.core.runner import CACHE_DIR_ENV
        from repro.core.store import STORE_ENV

        monkeypatch.setenv(STORE_ENV, "blockchain")
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert get_engine().store.describe() == "memory"
        # with persistence requested the configuration error is real
        set_engine(None)
        monkeypatch.setenv(CACHE_DIR_ENV, "/tmp/somewhere")
        with pytest.raises(ReproError, match="blockchain"):
            get_engine()

    def test_session_does_not_disturb_default_engine(self):
        default = get_engine()
        with Session() as session:
            session.exhibits(names=("table1",))
        assert get_engine() is default


class TestRunRequestGrids:
    def test_grid_matches_direct_simulation(self):
        request = RunRequest(workloads=("nasa7",), configs=("reference", "ooo"))
        with Session() as session:
            grid = session.run(request)
        assert len(grid) == 2
        direct = run_simulation("nasa7", get_config("ooo"))
        assert grid.get("nasa7", "ooo").to_dict() == direct.to_dict()
        assert grid.speedup("nasa7", "ooo") == pytest.approx(
            direct.speedup_over(run_simulation("nasa7", get_config("reference"))))

    def test_duplicate_config_names_stay_addressable(self):
        small = ooo_config(phys_vregs=9)
        large = ooo_config(phys_vregs=64)
        assert small.name == large.name  # the ambiguity under test
        with Session() as session:
            grid = session.run(RunRequest(workloads=("nasa7",),
                                          configs=(small, large)))
        assert grid.get("nasa7", small).cycles >= grid.get("nasa7", large).cycles
        with pytest.raises(ReproError, match="ambiguous"):
            grid.get("nasa7", "ooo")

    def test_unknown_workload_rejected(self):
        with Session() as session:
            with pytest.raises(ReproError, match="unknown workload"):
                session.run(RunRequest(workloads=("doom",)))

    def test_results_are_defensive_copies(self):
        request = RunRequest(workloads=("nasa7",), configs=("reference",))
        with Session() as session:
            first = session.run(request).get("nasa7", "reference")
            first.stats.cycles = -1
            second = session.run(request).get("nasa7", "reference")
        assert second.cycles > 0

    def test_per_request_chunking_override_is_bit_identical(self):
        base = RunRequest(workloads=("nasa7",), configs=("reference",))
        chunked = RunRequest(workloads=("nasa7",), configs=("reference",),
                             chunk_size=300)
        with Session() as session:
            mono = session.run(base).get("nasa7", "reference")
        with Session() as session:
            via_chunks = session.run(chunked).get("nasa7", "reference")
        assert mono.to_dict() == via_chunks.to_dict()

    def test_to_dict_lists_every_grid_point(self):
        small = ooo_config(phys_vregs=9)
        large = ooo_config(phys_vregs=64)
        with Session() as session:
            grid = session.run(RunRequest(workloads=("nasa7",),
                                          configs=(small, large)))
        assert len(grid.to_dict()["nasa7"]) == 2


class TestExhibitParityWithCLI:
    def test_exhibit_set_data_equals_cli_json(self, capsys):
        from repro.cli import main

        assert main(["run-all", "--exhibits", "table2,figure6",
                     "--programs", "trfd", "--format", "json"]) == 0
        cli_doc = json.loads(capsys.readouterr().out)

        set_engine(None)
        with Session() as session:
            exhibits = session.exhibits(names=("table2", "figure6"),
                                        programs=("trfd",), scale="small")
        api_doc = json.loads(exhibits.to_json())
        assert api_doc["exhibits"] == cli_doc["exhibits"]
        assert api_doc["scale"] == cli_doc["scale"]
        assert api_doc["programs"] == cli_doc["programs"]

    def test_exhibit_set_text_matches_cli_blocks(self, capsys):
        from repro.cli import main

        assert main(["run-all", "--exhibits", "table1"]) == 0
        cli_out = capsys.readouterr().out

        with Session() as session:
            exhibits = session.exhibits(names=("table1",))
        table1 = exhibits["table1"]
        assert table1.render() in cli_out
        assert exhibits.render("table1") == table1.render()
        # the full text layout embeds the same report between its rules
        assert table1.render() in exhibits.to_text()

    def test_exhibits_cache_through_session_store(self, tmp_path):
        with Session(cache_dir=tmp_path) as session:
            session.exhibits(names=("figure6",), programs=("trfd",))
            assert session.engine.simulated > 0
        with Session(cache_dir=tmp_path) as session:
            session.exhibits(names=("figure6",), programs=("trfd",))
            assert session.engine.simulated == 0
            assert session.engine.disk_hits > 0

    def test_exhibits_csv_has_flat_rows(self):
        with Session() as session:
            exhibits = session.exhibits(names=("figure6",), programs=("trfd",))
        rows = exhibits.to_csv().splitlines()
        assert rows[0] == "exhibit,path,value"
        assert any(row.startswith("figure6,trfd/") for row in rows[1:])

    def test_unknown_exhibit_name_rejected(self):
        with Session() as session:
            with pytest.raises(ReproError, match="unknown exhibit"):
                session.exhibits(names=("figure99",))

    def test_object_store_serves_warm_exhibits(self, tmp_path):
        with Session(cache_dir=tmp_path, store="object") as session:
            session.exhibits(names=("figure6",), programs=("trfd",))
        with Session(cache_dir=tmp_path, store="object") as session:
            exhibits = session.exhibits(names=("figure6",), programs=("trfd",))
            assert session.engine.simulated == 0
        assert isinstance(exhibits, ExhibitSet)


class TestSimulateAndGc:
    def test_simulate_chunked_equals_monolithic(self):
        with Session() as session:
            mono, report = session.simulate("nasa7", "ooo")
            assert report is None
            chunked, report = session.simulate("nasa7", "ooo", chunk_size=300)
        assert report is not None and report.chunks > 1
        assert mono.to_dict() == chunked.to_dict()

    def test_simulate_unknown_program(self):
        with Session() as session:
            with pytest.raises(ReproError, match="unknown program"):
                session.simulate("doom")

    def test_gc_requires_cache_dir(self):
        with Session() as session:
            with pytest.raises(ReproError, match="cache directory"):
                session.gc()

    def test_gc_covers_all_namespaces(self, tmp_path):
        with Session(cache_dir=tmp_path, chunk_size=300) as session:
            session.result("nasa7", "reference")
            collected = session.gc()
        assert set(collected) == {"results", "traces", "chunks"}
        assert collected["results"][0] >= 1  # the stored result was kept
        assert collected["traces"][0] >= 1   # the memoised trace was kept


class TestMachineRegistry:
    def test_builtin_models_registered(self):
        assert set(machine_names()) >= {"reference", "ooo"}
        assert model_for_params(OOOParams()).name == "ooo"
        assert model_for_params(ReferenceParams()).name == "reference"

    def test_create_run_builds_protocol_machines(self):
        machine = create_run(OOOParams())
        for method in ("run_slice", "finalise", "snapshot", "restore"):
            assert callable(getattr(machine, method))

    def test_unknown_lookups_raise(self):
        with pytest.raises(ReproError, match="unknown machine model"):
            get_machine_model("quantum")
        with pytest.raises(ReproError, match="no machine model registered"):
            model_for_params(object())

    def test_conflicting_registration_rejected(self):
        class _FakeParams:
            pass

        with pytest.raises(ReproError, match="already registered"):
            register_machine(MachineModel(
                name="ooo", params_type=_FakeParams,
                factory=lambda params, trace: None))
        with pytest.raises(ReproError, match="already registered"):
            register_machine(MachineModel(
                name="ooo2", params_type=OOOParams,
                factory=lambda params, trace: None))


class TestDeprecationShims:
    def test_configure_engine_warns_and_behaves_identically(self, tmp_path):
        from repro.core.runner import configure_engine

        with pytest.warns(DeprecationWarning, match="Session"):
            engine = configure_engine(cache_dir=tmp_path, store="json")
        assert get_engine() is engine
        result = engine.result("nasa7", get_config("reference"))
        with Session(cache_dir=tmp_path, store="json") as session:
            assert session.engine.simulated == 0  # served from the shim's cache
            via_session = session.result("nasa7", "reference")
        assert via_session.to_dict() == result.to_dict()

    def test_run_cached_warns_and_matches_session(self):
        from repro.core.simulator import run_cached

        with pytest.warns(DeprecationWarning, match="Session"):
            old = run_cached("nasa7", get_config("reference"))
        with Session() as session:
            new = session.result("nasa7", "reference")
        assert old.to_dict() == new.to_dict()


class TestChunkWorkerTraceLocator:
    def test_tasks_carry_locator_when_store_backed(self, tmp_path):
        from repro.parallel.driver import ChunkedSimulation, _simulate_chunk
        from repro.parallel.scout import plan_chunks
        from repro.trace.store import TraceStore

        store = TraceStore(tmp_path / "traces")
        store.ensure("nasa7", "small")
        trace = store.load_memoised("nasa7", "small")
        config = get_config("reference")
        sim = ChunkedSimulation(
            trace, config.params, chunk_size=300,
            trace_source=(str(store.cache_dir), "nasa7", "small"),
        )
        plans = plan_chunks(trace, config.params, 300)
        assert len(plans) > 1
        task = sim._task(plans[1])
        source = task[2]
        assert source[0] == "trace"  # a locator, not pickled instructions
        assert source[1:4] == (str(store.cache_dir), "nasa7", "small")
        # the worker resolves the locator to exactly the plan's slice
        payload = _simulate_chunk(task)
        assert payload["state"]["kind"] == "ref"
        assert payload["checkpoints"][0]["offset"] == 0

    def test_inline_fallback_without_store(self):
        from repro.parallel.driver import ChunkedSimulation
        from repro.parallel.scout import plan_chunks
        from repro.workloads.registry import get_workload

        trace = get_workload("nasa7", "small").trace()
        config = get_config("reference")
        sim = ChunkedSimulation(trace, config.params, chunk_size=300)
        plans = plan_chunks(trace, config.params, 300)
        source = sim._task(plans[0])[2]
        assert source[0] == "inline"
        assert source[1] == trace.instructions[plans[0].start:plans[0].stop]

    def test_store_backed_chunked_point_equals_monolithic(self, tmp_path):
        from repro.core.simulator import simulate_point, simulate_point_chunked
        from repro.trace.store import TraceStore

        store = TraceStore(tmp_path / "traces")
        config = get_config("ooo")
        mono = simulate_point("nasa7", "small", config)
        chunked, report = simulate_point_chunked(
            "nasa7", "small", config, chunk_size=300, intra_jobs=2,
            trace_store=store,
        )
        assert report.chunks > 1
        assert mono.to_dict() == chunked.to_dict()


class TestSettingsSessionIntegration:
    def test_settings_object_reuse(self, tmp_path):
        settings = Settings.resolve(cache_dir=tmp_path, env={})
        with Session(settings) as first:
            first.result("nasa7", "reference")
        with Session(settings, jobs=2) as second:
            assert second.engine.jobs == 2
            assert second.engine.simulated == 0 or second.engine.disk_hits >= 0
            second.result("nasa7", "reference")
            assert second.engine.simulated == 0  # warm via shared cache dir
