"""Tests for the Figure 10 lost-decode exhibit and the machine-readable
``run-all --format json/csv`` output."""

import csv
import io
import json

import pytest

from repro.analysis.exhibits import EXHIBIT_NAMES, get_exhibits
from repro.analysis.export import exhibits_payload, render_csv, render_json, to_jsonable
from repro.analysis.report import report_lost_decode
from repro.common.params import OOOParams
from repro.core.experiments import figure10_lost_decode_cycles, lost_decode_row
from repro.core.runner import set_engine
from repro.isa.opcodes import Opcode
from repro.isa.registers import vreg
from repro.ooo.machine import OOOVectorSimulator
from repro.trace.records import DynInstr, Trace


@pytest.fixture(autouse=True)
def _isolated_default_engine():
    set_engine(None)
    yield
    set_engine(None)


def _vadd_chain() -> Trace:
    """Three dependent VADDs (same trace as the stall-accounting tests)."""
    def vadd(seq, dest, src):
        return DynInstr(seq=seq, opcode=Opcode.VADD, pc=seq, dest=vreg(dest),
                        srcs=(vreg(src), vreg(src)), vl=4)

    return Trace("vadd-chain", [vadd(0, 3, 1), vadd(1, 4, 3), vadd(2, 5, 4)])


class TestLostDecodeExhibit:
    def test_row_pinned_on_hand_built_trace(self):
        # Hand-derived (see TestStallCycleAccounting): with one V-queue slot
        # the third VADD waits 6 cycles for admission; total runtime is 26.
        stats = OOOVectorSimulator(OOOParams(queue_slots=1)).run(_vadd_chain())
        row = lost_decode_row(stats)
        assert row == {
            "cycles": 26,
            "rename": 0,
            "rob": 0,
            "queue": 6,
            "lost_percent": pytest.approx(100.0 * 6 / 26),
        }

    def test_row_pinned_rob_stalls(self):
        from repro.common.params import CommitModel

        stats = OOOVectorSimulator(
            OOOParams(rob_entries=1, commit_model=CommitModel.LATE)
        ).run(_vadd_chain())
        row = lost_decode_row(stats)
        assert row["cycles"] == 36
        assert row["rob"] == 22
        assert row["rename"] == 0 and row["queue"] == 0
        assert row["lost_percent"] == pytest.approx(100.0 * 22 / 36)

    def test_figure10_registered_as_exhibit(self):
        assert "figure10" in EXHIBIT_NAMES
        # paper order: between figure9 and figure11
        assert EXHIBIT_NAMES.index("figure9") < EXHIBIT_NAMES.index("figure10")
        assert EXHIBIT_NAMES.index("figure10") < EXHIBIT_NAMES.index("figure11")

    def test_figure10_runs_and_renders(self):
        data = figure10_lost_decode_cycles(["trfd"], register_counts=(9, 16),
                                           scale="tiny")
        assert set(data) == {"trfd"}
        assert set(data["trfd"]) == {9, 16}
        for row in data["trfd"].values():
            assert row["cycles"] > 0
            assert row["rename"] >= 0 and row["rob"] >= 0 and row["queue"] >= 0
        # fewer registers → at least as many rename-stall cycles
        assert data["trfd"][9]["rename"] >= data["trfd"][16]["rename"]
        report = report_lost_decode(data)
        assert "Figure 10" in report and "rename" in report

    def test_figure10_reuses_figure5_grid_points(self):
        # The exhibit must not enlarge the simulation grid: its configs are
        # the same early-commit OOOVA points Figure 5's 16-slot curve uses.
        from repro.core.experiments import figure5_speedup_vs_registers
        from repro.core.runner import ExperimentEngine

        engine = ExperimentEngine()
        figure5_speedup_vs_registers(["trfd"], scale="tiny", engine=engine)
        before = engine.simulated
        figure10_lost_decode_cycles(["trfd"], scale="tiny", engine=engine)
        assert engine.simulated == before


class TestJsonableConversion:
    def test_state_tuple_keys_use_paper_notation(self):
        data = {("trfd"): {1: {(True, False, True): 10, (False, False, False): 2}}}
        converted = to_jsonable(data)
        assert converted == {"trfd": {"1": {"<FU2,,MEM>": 10, "<,,>": 2}}}
        json.dumps(converted)  # round-trips through the json module

    def test_dataclasses_become_dicts(self):
        from repro.trace.stats import compute_trace_statistics
        from repro.workloads.registry import get_workload

        stats = compute_trace_statistics(get_workload("trfd", "tiny").trace())
        converted = to_jsonable({"trfd": stats})
        assert converted["trfd"]["vector_instructions"] == stats.vector_instructions
        json.dumps(converted)

    def test_non_finite_floats_become_null(self):
        # figure5 reports {'ideal': inf} when a program has no vector work;
        # strict JSON has no Infinity/NaN spelling, so both map to null.
        converted = to_jsonable({"ideal": float("inf"), "nan": float("nan"),
                                 "ok": 1.5})
        assert converted == {"ideal": None, "nan": None, "ok": 1.5}
        doc = render_json(exhibits_payload({"f": converted}, "small", None))
        assert "Infinity" not in doc and "NaN" not in doc
        json.loads(doc)

    def test_payload_and_csv_formats(self):
        exhibits = {"figure6": {"trfd": {"REF": 0.5, "OOOVA": 0.25}}}
        payload = exhibits_payload(exhibits, "small", ["trfd"],
                                   engine_summary={"simulated": 2})
        doc = json.loads(render_json(payload))
        assert doc["scale"] == "small"
        assert doc["programs"] == ["trfd"]
        assert doc["engine"]["simulated"] == 2
        assert doc["exhibits"]["figure6"]["trfd"]["REF"] == 0.5

        rows = list(csv.reader(io.StringIO(render_csv(payload))))
        assert rows[0] == ["exhibit", "path", "value"]
        assert ["figure6", "trfd/REF", "0.5"] in rows
        assert ["figure6", "trfd/OOOVA", "0.25"] in rows


class TestCLIFormats:
    def test_run_all_json_parses_and_covers_exhibits(self, tmp_path, capsys):
        from repro.cli import main

        args = ["run-all", "--cache-dir", str(tmp_path), "--programs", "trfd",
                "--exhibits", "table1,figure6,figure10", "--format", "json"]
        assert main(args) == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)  # stdout is one parseable document
        assert set(doc["exhibits"]) == {"table1", "figure6", "figure10"}
        assert doc["engine"]["simulated"] > 0
        assert "engine:" in captured.err  # human trailer stays on stderr
        # every per-register row of figure10 made it through conversion
        fig10 = doc["exhibits"]["figure10"]["trfd"]
        assert all("lost_percent" in row for row in fig10.values())

    def test_run_all_csv_is_flat_and_parseable(self, tmp_path, capsys):
        from repro.cli import main

        args = ["run-all", "--cache-dir", str(tmp_path), "--programs", "trfd",
                "--exhibits", "figure6", "--format", "csv"]
        assert main(args) == 0
        out = capsys.readouterr().out
        rows = list(csv.reader(io.StringIO(out)))
        assert rows[0] == ["exhibit", "path", "value"]
        paths = {row[1] for row in rows[1:] if row}
        assert {"trfd/REF", "trfd/OOOVA"} <= paths

    def test_run_all_sqlite_warm_covers_whole_grid(self, tmp_path, capsys):
        # Acceptance criterion: a warm run-all against the SQLite backend
        # performs zero simulations — every point is a disk hit.
        from repro.cli import main

        args = ["run-all", "--cache-dir", str(tmp_path), "--store", "sqlite",
                "--programs", "trfd", "--exhibits", "figure6,figure8"]
        assert main(args) == 0
        cold_out = capsys.readouterr().out
        assert "0 simulated" not in cold_out
        assert main(args) == 0
        warm_out = capsys.readouterr().out
        assert "engine: 0 simulated" in warm_out
        assert "store=sqlite" in warm_out

    @pytest.mark.parametrize("backend", ["json", "sqlite", "object"])
    def test_gc_subcommand_reports_counts(self, tmp_path, capsys, backend):
        from test_store_backends import _corrupt_entry

        from repro.cli import main
        from repro.core.runner import ExperimentPoint
        from repro.core.config import ooo_config, reference_config

        assert main(["run-all", "--cache-dir", str(tmp_path), "--store", backend,
                     "--programs", "trfd", "--exhibits", "figure6"]) == 0
        capsys.readouterr()
        # damage one of the two figure6 entries, then collect
        victim = ExperimentPoint("trfd", "small", ooo_config())
        _corrupt_entry(backend, tmp_path, victim)
        assert main(["gc", "--cache-dir", str(tmp_path),
                     "--store", backend]) == 0
        out = capsys.readouterr().out
        assert "1 kept, 1 evicted" in out

    def test_explicit_store_without_cache_dir_rejected(self, capsys):
        # An explicit backend choice with nothing to persist to would be
        # silently ignored; refuse instead.
        from repro.cli import main

        assert main(["run-all", "--store", "sqlite",
                     "--programs", "trfd", "--exhibits", "table1"]) == 2
        assert "requires a cache directory" in capsys.readouterr().err

    def test_invalid_env_backend_is_a_clean_error(self, tmp_path, monkeypatch, capsys):
        # argparse does not validate defaults against choices, so a bogus
        # $REPRO_STORE must be rejected explicitly, not via a traceback.
        from repro.cli import main
        from repro.core.store import STORE_ENV

        monkeypatch.setenv(STORE_ENV, "blockchain")
        assert main(["run-all", "--cache-dir", str(tmp_path),
                     "--programs", "trfd", "--exhibits", "table1"]) == 2
        assert "blockchain" in capsys.readouterr().err
        assert main(["gc", "--cache-dir", str(tmp_path)]) == 2
        assert "blockchain" in capsys.readouterr().err
        # an explicit --store overrides the bad environment value
        assert main(["run-all", "--cache-dir", str(tmp_path), "--store", "json",
                     "--programs", "trfd", "--exhibits", "table1"]) == 0

    def test_list_mentions_stores_and_formats(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sqlite" in out and "csv" in out and "figure10" in out
