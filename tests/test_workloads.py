"""Tests for the ten synthetic benchmark re-creations."""

import pytest

from repro.common.errors import WorkloadError
from repro.workloads import (
    WORKLOAD_CLASSES,
    WORKLOAD_NAMES,
    all_workloads,
    get_workload,
)
from repro.workloads.base import SCALES, Workload, scaled


class TestRegistry:
    def test_ten_programs(self):
        assert len(WORKLOAD_NAMES) == 10
        assert set(WORKLOAD_NAMES) == {
            "swm256", "hydro2d", "arc2d", "flo52", "nasa7",
            "su2cor", "tomcatv", "bdna", "trfd", "dyfesm",
        }

    def test_get_workload(self):
        workload = get_workload("trfd")
        assert workload.name == "trfd"
        assert isinstance(workload, Workload)

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            get_workload("linpack")

    def test_all_workloads(self):
        assert [w.name for w in all_workloads("tiny")] == list(WORKLOAD_NAMES)

    def test_invalid_scale(self):
        with pytest.raises(WorkloadError):
            get_workload("trfd", scale="huge")

    def test_scaled_helper(self):
        assert scaled(100, "tiny") == 25
        assert scaled(100, "small") == 100
        assert scaled(1, "tiny", minimum=1) == 1
        with pytest.raises(WorkloadError):
            scaled(10, "bogus")

    def test_scales_table(self):
        assert set(SCALES) == {"tiny", "small", "medium"}


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestEachWorkload:
    def test_kernel_builds_and_compiles(self, name):
        workload = get_workload(name, "tiny")
        result = workload.compile()
        assert result.static_instructions > 10
        result.program.validate()

    def test_trace_is_cached(self, name):
        workload = get_workload(name, "tiny")
        assert workload.trace() is workload.trace()

    def test_meets_paper_admission_criterion(self, name):
        # The paper selects programs with at least 70% vectorisation.
        stats = get_workload(name, "tiny").statistics()
        assert stats.vectorization_percent >= 70.0

    def test_vector_lengths_legal(self, name):
        stats = get_workload(name, "tiny").statistics()
        assert 0 < stats.average_vector_length <= 128.0

    def test_characteristics_declared(self, name):
        cls = WORKLOAD_CLASSES[name]
        assert cls.characteristics.vectorization_percent >= 70.0
        assert cls.suite in ("Perfect", "Specfp92")


class TestSuiteShape:
    """Cross-program properties that drive the paper's per-program stories."""

    def test_bdna_is_the_spill_heavy_program(self):
        fractions = {
            name: get_workload(name, "tiny").statistics().spill_traffic_fraction
            for name in WORKLOAD_NAMES
        }
        assert fractions["bdna"] == max(fractions.values())
        assert fractions["bdna"] > 0.3

    def test_trfd_and_dyfesm_have_short_vectors(self):
        lengths = {
            name: get_workload(name, "tiny").statistics().average_vector_length
            for name in WORKLOAD_NAMES
        }
        ranked = sorted(lengths, key=lengths.get)
        assert set(ranked[:2]) == {"trfd", "dyfesm"}

    def test_swm256_has_the_longest_vectors(self):
        lengths = {
            name: get_workload(name, "tiny").statistics().average_vector_length
            for name in ("swm256", "flo52", "dyfesm")
        }
        assert lengths["swm256"] > lengths["flo52"] > lengths["dyfesm"]

    def test_tomcatv_is_the_most_scalar_program(self):
        scalar_share = {}
        for name in ("tomcatv", "swm256", "arc2d"):
            stats = get_workload(name, "tiny").statistics()
            scalar_share[name] = (stats.scalar_instructions
                                  / max(stats.total_instructions, 1))
        assert scalar_share["tomcatv"] == max(scalar_share.values())

    def test_nasa7_exercises_calls(self):
        from repro.isa.opcodes import Opcode
        trace = get_workload("nasa7", "tiny").trace()
        assert any(d.opcode is Opcode.CALL for d in trace)
        assert any(d.opcode is Opcode.RET for d in trace)

    def test_su2cor_and_bdna_exercise_gathers(self):
        from repro.isa.opcodes import Opcode
        for name in ("su2cor", "bdna"):
            trace = get_workload(name, "tiny").trace()
            assert any(d.opcode is Opcode.VGATHER for d in trace), name

    def test_scale_grows_dynamic_instruction_count(self):
        tiny = len(get_workload("hydro2d", "tiny").trace())
        small = len(get_workload("hydro2d", "small").trace())
        assert small > tiny
