"""Unit and property tests for schedulable resources."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.resources import GapResource, InOrderPipe, PipelinedResource


class TestGapResource:
    def test_reserves_at_earliest_when_free(self):
        res = GapResource("bus")
        assert res.reserve(10, 5) == 10
        assert res.busy_cycles() == 5

    def test_back_to_back_reservations_do_not_overlap(self):
        res = GapResource()
        first = res.reserve(0, 10)
        second = res.reserve(0, 10)
        assert first == 0
        assert second == 10

    def test_gap_filling(self):
        res = GapResource()
        res.reserve(0, 5)
        res.reserve(20, 5)
        # A later request that fits between the two reservations gets the gap.
        assert res.reserve(5, 10) == 5

    def test_gap_too_small_is_skipped(self):
        res = GapResource()
        res.reserve(0, 5)
        res.reserve(8, 5)
        assert res.reserve(0, 4) == 13

    def test_zero_duration(self):
        res = GapResource()
        assert res.reserve(7, 0) == 7
        assert res.busy_cycles() == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            GapResource().reserve(0, -1)

    def test_next_free_does_not_reserve(self):
        res = GapResource()
        res.reserve(0, 10)
        assert res.next_free(0, 5) == 10
        assert res.next_free(0, 5) == 10  # unchanged: nothing was reserved

    @given(st.lists(st.tuples(st.integers(0, 500), st.integers(1, 30)), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_reservations_never_overlap(self, requests):
        res = GapResource()
        granted = []
        for earliest, duration in requests:
            start = res.reserve(earliest, duration)
            assert start >= earliest
            granted.append((start, start + duration))
        granted.sort()
        for (_s1, e1), (s2, _e2) in zip(granted, granted[1:], strict=False):
            assert e1 <= s2
        assert res.busy_cycles() == sum(e - s for s, e in granted)

    # -- adversarial gap-filling invariants --------------------------------
    # GapResource underpins every machine-timing model (functional units and
    # the memory address bus); these randomized sequences pin the internal
    # invariants the simulators silently rely on.

    @given(st.lists(st.tuples(st.integers(0, 300), st.integers(0, 25)),
                    min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_internal_intervals_stay_sorted_and_disjoint(self, requests):
        res = GapResource()
        for earliest, duration in requests:
            res.reserve(earliest, duration)
            starts, ends = res._starts, res._ends
            assert len(starts) == len(ends)
            for s, e in zip(starts, ends, strict=True):
                assert s < e  # merging never leaves empty intervals behind
            for (_s1, e1), (s2, _e2) in zip(zip(starts, ends, strict=True),
                                          zip(starts[1:], ends[1:], strict=True),
                                          strict=False):
                # strictly separated: adjacent intervals must have merged
                assert e1 < s2

    @given(st.lists(st.tuples(st.integers(0, 300), st.integers(1, 25)),
                    min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_next_free_agrees_with_reserve(self, requests):
        res = GapResource()
        for earliest, duration in requests:
            predicted = res.next_free(earliest, duration)
            start = res.reserve(earliest, duration)
            assert start == predicted
            assert start >= earliest

    @given(st.lists(st.tuples(st.integers(0, 200), st.integers(1, 20)),
                    min_size=2, max_size=60),
           st.integers(0, 400), st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_probe_never_lands_on_busy_cycles(self, requests, probe_earliest,
                                              probe_duration):
        res = GapResource()
        for earliest, duration in requests:
            res.reserve(earliest, duration)
        probe = res.next_free(probe_earliest, probe_duration)
        assert probe >= probe_earliest
        busy = {c for s, e in zip(res._starts, res._ends, strict=True) for c in range(s, e)}
        assert not busy.intersection(range(probe, probe + probe_duration))


class TestPipelinedResource:
    def test_one_per_cycle(self):
        unit = PipelinedResource("scalar")
        assert unit.reserve(5) == 5
        assert unit.reserve(5) == 6
        assert unit.reserve(5) == 7

    def test_width_two(self):
        unit = PipelinedResource(width=2)
        assert unit.reserve(0) == 0
        assert unit.reserve(0) == 0
        assert unit.reserve(0) == 1

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            PipelinedResource(width=0)

    def test_operation_count(self):
        unit = PipelinedResource()
        for _ in range(5):
            unit.reserve(0)
        assert unit.operations == 5


class TestInOrderPipe:
    def test_depth_is_added(self):
        pipe = InOrderPipe(depth=3)
        assert pipe.advance(10) == 13

    def test_one_exit_per_cycle(self):
        pipe = InOrderPipe(depth=3)
        first = pipe.advance(0)
        second = pipe.advance(0)
        third = pipe.advance(0)
        assert (first, second, third) == (3, 4, 5)

    def test_gap_resets_rate_limit(self):
        pipe = InOrderPipe(depth=2)
        pipe.advance(0)
        assert pipe.advance(100) == 102

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_exits_strictly_increase(self, enters):
        pipe = InOrderPipe(depth=3)
        exits = [pipe.advance(t) for t in sorted(enters)]
        for earlier, later in zip(exits, exits[1:], strict=False):
            assert later > earlier
