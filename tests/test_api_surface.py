"""Public-surface lock for :mod:`repro.api`.

``repro.api.__all__`` is the repository's public API contract: CI fails
when a name disappears or appears without this snapshot being updated on
purpose.  Removing or renaming an entry is a breaking change; additions
must extend the snapshot (and the README's PUBLIC API section) in the
same commit.
"""

import inspect

import repro.api

#: the locked surface — update deliberately, never incidentally
PUBLIC_SURFACE = (
    "CACHE_DIR_ENV",
    "CHUNK_SIZE_ENV",
    "CheckPass",
    "ExecutionPlan",
    "ExhibitResult",
    "ExhibitSet",
    "FLEET_ENV",
    "Finding",
    "INTRA_JOBS_ENV",
    "JOBS_ENV",
    "KERNEL_ENV",
    "KERNEL_NAMES",
    "Machine",
    "MachineConfig",
    "MachineModel",
    "RunHandle",
    "RunRequest",
    "RunResult",
    "RunStatus",
    "SCALE_ALIASES",
    "Session",
    "Settings",
    "create_run",
    "engine_summary_dict",
    "get_machine_model",
    "machine_config",
    "machine_names",
    "model_for_params",
    "register_machine",
    "register_pass",
    "resolve_scale",
    "run_checks",
)


def test_public_surface_is_locked():
    assert tuple(sorted(repro.api.__all__)) == PUBLIC_SURFACE


def test_every_export_resolves():
    for name in repro.api.__all__:
        assert hasattr(repro.api, name), f"repro.api.{name} does not resolve"


def test_every_class_and_function_is_documented():
    for name in repro.api.__all__:
        export = getattr(repro.api, name)
        if inspect.isclass(export) or inspect.isfunction(export):
            assert inspect.getdoc(export), f"repro.api.{name} has no docstring"


def test_session_public_methods_are_documented():
    from repro.api import Session

    for name, member in vars(Session).items():
        if name.startswith("_") or not callable(member):
            continue
        assert inspect.getdoc(member), f"Session.{name} has no docstring"


def test_surface_is_sorted_for_stable_diffs():
    assert list(repro.api.__all__) == sorted(repro.api.__all__)
