"""Behavioural tests of the OOOVA machine model against the paper's claims."""

import dataclasses

import pytest

from repro.common.errors import SimulationError
from repro.common.params import CommitModel, LoadElimination, OOOParams, ReferenceParams
from repro.compiler import ir
from repro.compiler.pipeline import compile_kernel
from repro.isa.opcodes import Opcode
from repro.isa.registers import vreg
from repro.ooo.machine import simulate_ooo
from repro.refsim.machine import simulate_reference
from repro.trace.generator import generate_trace
from repro.trace.records import DynInstr, Trace


def _trace(kernel: ir.Kernel):
    return generate_trace(compile_kernel(kernel).program)


@pytest.fixture(scope="module")
def streaming_trace():
    """A bandwidth-bound kernel with independent statements."""
    n = 1024
    a, b, c, d = (ir.Array(name, n) for name in "abcd")
    kernel = ir.Kernel("streaming")
    kernel.add(ir.Loop("outer", 3, (
        ir.VectorLoop("axpy", trip=n, statements=(
            ir.VectorAssign(c.ref(), a.ref() * 2.0 + b.ref()),
            ir.VectorAssign(d.ref(), a.ref() - b.ref() * 0.5),
        )),
    )))
    return _trace(kernel)


@pytest.fixture(scope="module")
def recurrence_trace():
    """A kernel with a tight store→load recurrence (trfd-like)."""
    x = ir.Array("x", 32)
    y = ir.Array("y", 32)
    kernel = ir.Kernel("recurrence")
    kernel.add(ir.Loop("outer", 20, (
        ir.VectorLoop("body", trip=32, max_vl=32, statements=(
            ir.VectorAssign(x.ref(), x.ref() * 0.5 + y.ref()),
        )),
    )))
    return _trace(kernel)


class TestBasics:
    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            simulate_ooo(Trace("empty"))

    def test_deterministic(self, streaming_trace):
        params = OOOParams(num_phys_vregs=16)
        assert simulate_ooo(streaming_trace, params).cycles == \
            simulate_ooo(streaming_trace, params).cycles

    def test_counts_match_reference_simulator(self, streaming_trace):
        ooo = simulate_ooo(streaming_trace, OOOParams(num_phys_vregs=16))
        ref = simulate_reference(streaming_trace, ReferenceParams())
        assert ooo.vector_instructions == ref.vector_instructions
        assert ooo.vector_operations == ref.vector_operations
        assert ooo.traffic.total_ops == ref.traffic.total_ops

    def test_state_breakdown_partitions_time(self, streaming_trace):
        stats = simulate_ooo(streaming_trace, OOOParams(num_phys_vregs=16))
        assert sum(stats.state_breakdown().values()) == stats.cycles


class TestPaperClaims:
    def test_out_of_order_beats_in_order(self, streaming_trace):
        ref = simulate_reference(streaming_trace, ReferenceParams())
        ooo = simulate_ooo(streaming_trace, OOOParams(num_phys_vregs=16))
        assert ooo.cycles < ref.cycles

    def test_more_physical_registers_never_hurt(self, streaming_trace):
        cycles = [
            simulate_ooo(streaming_trace, OOOParams(num_phys_vregs=regs)).cycles
            for regs in (9, 16, 32, 64)
        ]
        assert cycles == sorted(cycles, reverse=True)

    def test_ideal_bound_respected(self, streaming_trace):
        ref = simulate_reference(streaming_trace, ReferenceParams())
        ooo = simulate_ooo(streaming_trace, OOOParams(num_phys_vregs=64))
        assert ooo.cycles >= ref.ideal_cycles()

    def test_latency_tolerance(self, streaming_trace):
        ref_1 = simulate_reference(streaming_trace, ReferenceParams().with_memory_latency(1))
        ref_100 = simulate_reference(streaming_trace, ReferenceParams().with_memory_latency(100))
        ooo_1 = simulate_ooo(streaming_trace, OOOParams(num_phys_vregs=16).with_memory_latency(1))
        ooo_100 = simulate_ooo(streaming_trace,
                               OOOParams(num_phys_vregs=16).with_memory_latency(100))
        assert (ooo_100.cycles / ooo_1.cycles) < (ref_100.cycles / ref_1.cycles)

    def test_memory_port_idle_reduced(self, streaming_trace):
        ref = simulate_reference(streaming_trace, ReferenceParams())
        ooo = simulate_ooo(streaming_trace, OOOParams(num_phys_vregs=16))
        assert ooo.memory_port_idle_fraction() < ref.memory_port_idle_fraction()

    def test_late_commit_costs_performance(self, recurrence_trace):
        early = simulate_ooo(recurrence_trace, OOOParams(num_phys_vregs=16))
        late = simulate_ooo(recurrence_trace,
                            OOOParams(num_phys_vregs=16, commit_model=CommitModel.LATE))
        assert late.cycles > early.cycles
        assert late.stores_executed_at_head > 0

    def test_late_commit_mild_for_streaming_code(self, streaming_trace):
        early = simulate_ooo(streaming_trace, OOOParams(num_phys_vregs=16))
        late = simulate_ooo(streaming_trace,
                            OOOParams(num_phys_vregs=16, commit_model=CommitModel.LATE))
        assert late.cycles <= early.cycles * 1.35

    def test_vector_load_elimination_removes_recurrence_traffic(self, recurrence_trace):
        base_params = OOOParams(num_phys_vregs=32, commit_model=CommitModel.LATE)
        baseline = simulate_ooo(recurrence_trace, base_params)
        vle = simulate_ooo(
            recurrence_trace,
            dataclasses.replace(base_params, load_elimination=LoadElimination.SLE_VLE),
        )
        assert vle.loads_eliminated > 0
        assert vle.cycles < baseline.cycles
        assert vle.traffic.total_ops < baseline.traffic.total_ops
        assert vle.traffic.eliminated_vector_load_ops > 0

    def test_elimination_never_changes_work_done(self, recurrence_trace):
        base_params = OOOParams(num_phys_vregs=32, commit_model=CommitModel.LATE)
        baseline = simulate_ooo(recurrence_trace, base_params)
        vle = simulate_ooo(
            recurrence_trace,
            dataclasses.replace(base_params, load_elimination=LoadElimination.SLE_VLE),
        )
        assert vle.vector_operations == baseline.vector_operations
        # every removed request is accounted for
        assert (vle.traffic.total_ops + vle.traffic.total_eliminated_ops
                == baseline.traffic.total_ops)

    def test_queue_pressure_reported(self, streaming_trace):
        tight = simulate_ooo(streaming_trace, OOOParams(num_phys_vregs=16, queue_slots=1))
        roomy = simulate_ooo(streaming_trace, OOOParams(num_phys_vregs=16, queue_slots=128))
        assert tight.cycles >= roomy.cycles

    def test_branch_prediction_counters(self, streaming_trace):
        stats = simulate_ooo(streaming_trace, OOOParams(num_phys_vregs=16))
        assert stats.branches_predicted > 0
        assert 0 <= stats.branch_mispredictions <= stats.branches_predicted

    def test_few_physical_registers_cause_rename_stalls(self, streaming_trace):
        tight = simulate_ooo(streaming_trace, OOOParams(num_phys_vregs=9))
        roomy = simulate_ooo(streaming_trace, OOOParams(num_phys_vregs=64))
        assert tight.rename_stall_cycles > roomy.rename_stall_cycles


class TestStallCycleAccounting:
    """Regression tests pinning stall *cycle* counts on a hand-built trace.

    The stall counters used to increment by 1 per stall event while the
    statistics reported them as ``*_stall_cycles``; they now accumulate the
    cycles actually waited (``blocked_until - granted``).  The timings below
    are hand-derived from the default latencies: a VADD with vl=4 occupies
    its unit for vl + startup = 8 cycles and completes
    read_crossbar(1) + add(4) + write_crossbar(2) + vl = 11 cycles after it
    starts.
    """

    @staticmethod
    def _vadd_chain() -> Trace:
        """Three dependent VADDs: each consumes the previous result."""
        def vadd(seq: int, dest: int, src: int) -> DynInstr:
            return DynInstr(seq=seq, opcode=Opcode.VADD, pc=seq, dest=vreg(dest),
                            srcs=(vreg(src), vreg(src)), vl=4)

        return Trace("vadd-chain", [vadd(0, 3, 1), vadd(1, 4, 3), vadd(2, 5, 4)])

    def test_queue_stall_cycles_pinned(self):
        # With a single V-queue slot, instruction 2 cannot be admitted until
        # instruction 1 issues.  Instruction 0 issues at cycle 1 (first
        # result at 8); instruction 1 is admitted at 1 but only issues at 8
        # when its source is chainable; instruction 2 asks for admission at
        # cycle 2 and is granted at 8 — a 6-cycle stall in one stall event.
        stats = simulate_ooo(self._vadd_chain(), OOOParams(queue_slots=1))
        assert stats.queue_stall_cycles == 6
        assert stats.rob_stall_cycles == 0
        assert stats.rename_stall_cycles == 0
        assert stats.cycles == 26

    def test_rob_stall_cycles_pinned(self):
        # With a single reorder-buffer entry and late commit, every
        # instruction must wait for its predecessor to complete before it
        # can even be allocated an entry: instruction 1 asks at cycle 1 and
        # waits until 0 commits at 12 (11 cycles); instruction 2 asks at 13
        # and waits until 1 commits at 24 (11 cycles).
        stats = simulate_ooo(
            self._vadd_chain(),
            OOOParams(rob_entries=1, commit_model=CommitModel.LATE),
        )
        assert stats.rob_stall_cycles == 22
        assert stats.queue_stall_cycles == 0
        assert stats.cycles == 36
