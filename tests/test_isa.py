"""Unit tests for the ISA: registers, opcodes, instructions and programs."""

import pytest

from repro.common.errors import TraceError
from repro.isa import (
    ELEMENT_BYTES,
    Instruction,
    InstrKind,
    MemAccess,
    Opcode,
    Program,
    RegClass,
    Register,
    VECTOR_COMPUTE_OPCODES,
    VECTOR_MEMORY_OPCODES,
    all_registers,
    areg,
    count_kinds,
    opcode_by_name,
    parse_register,
    sreg,
    vmreg,
    vreg,
)


class TestRegisters:
    def test_constructors(self):
        assert str(areg(3)) == "a3"
        assert str(sreg(0)) == "s0"
        assert str(vreg(7)) == "v7"
        assert str(vmreg(1)) == "vm1"

    @pytest.mark.parametrize("cls", list(RegClass))
    def test_eight_architected_registers_per_class(self, cls):
        assert cls.count == 8
        assert len(all_registers(cls)) == 8

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            vreg(8)
        with pytest.raises(ValueError):
            Register(RegClass.A, -1)

    @pytest.mark.parametrize("text,expected", [
        ("v3", vreg(3)), ("a0", areg(0)), ("S5", sreg(5)), ("vm2", vmreg(2)),
    ])
    def test_parse_register(self, text, expected):
        assert parse_register(text) == expected

    def test_parse_register_invalid(self):
        with pytest.raises(ValueError):
            parse_register("x9")

    def test_class_predicates(self):
        assert RegClass.A.is_scalar and RegClass.S.is_scalar
        assert RegClass.V.is_vector
        assert not RegClass.VM.is_scalar

    def test_registers_hashable_and_ordered(self):
        assert len({vreg(1), vreg(1), vreg(2)}) == 2
        assert vreg(1) < vreg(2)


class TestOpcodes:
    def test_fu2_only_opcodes(self):
        # FU1 executes everything except multiplication, division and sqrt.
        assert Opcode.VMUL.fu2_only
        assert Opcode.VDIV.fu2_only
        assert Opcode.VSQRT.fu2_only
        assert not Opcode.VADD.fu2_only
        assert not Opcode.VAND.fu2_only

    def test_kind_classification(self):
        assert Opcode.VLOAD.kind is InstrKind.VECTOR_LOAD
        assert Opcode.VSTORE.kind is InstrKind.VECTOR_STORE
        assert Opcode.VADD.kind is InstrKind.VECTOR_ALU
        assert Opcode.LOAD.kind is InstrKind.SCALAR_LOAD
        assert Opcode.BR.kind is InstrKind.BRANCH
        assert Opcode.SETVL.kind is InstrKind.VECTOR_CONTROL

    def test_kind_predicates(self):
        assert InstrKind.VECTOR_LOAD.is_vector and InstrKind.VECTOR_LOAD.is_memory
        assert InstrKind.VECTOR_LOAD.is_load and not InstrKind.VECTOR_LOAD.is_store
        assert InstrKind.SCALAR_STORE.is_store
        assert not InstrKind.VECTOR_ALU.is_memory

    def test_access_modes(self):
        assert Opcode.VLOAD.info.access is MemAccess.UNIT
        assert Opcode.VLOADS.info.access is MemAccess.STRIDED
        assert Opcode.VGATHER.info.access is MemAccess.INDEXED

    def test_opcode_sets(self):
        assert Opcode.VADD in VECTOR_COMPUTE_OPCODES
        assert Opcode.VLOAD in VECTOR_MEMORY_OPCODES
        assert Opcode.VLOAD not in VECTOR_COMPUTE_OPCODES

    def test_mask_attributes(self):
        assert Opcode.VCMP.info.writes_mask
        assert Opcode.VMERGE.info.uses_mask

    def test_opcode_by_name(self):
        assert opcode_by_name("vadd") is Opcode.VADD
        assert opcode_by_name("  VSQRT ") is Opcode.VSQRT
        with pytest.raises(ValueError):
            opcode_by_name("nope")


class TestInstruction:
    def test_element_bytes(self):
        assert ELEMENT_BYTES == 8

    def test_def_use_sets(self):
        instr = Instruction(Opcode.VADD, dest=vreg(0), srcs=(vreg(1), vreg(2)))
        assert instr.defined_registers() == (vreg(0),)
        assert instr.used_registers() == (vreg(1), vreg(2))
        assert set(instr.registers()) == {vreg(0), vreg(1), vreg(2)}

    def test_vector_register_operands(self):
        instr = Instruction(Opcode.VSADD, dest=vreg(0), srcs=(vreg(1), sreg(2)))
        assert instr.vector_register_operands() == (vreg(0), vreg(1))

    def test_branch_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BR, srcs=(areg(0),))

    def test_ret_needs_no_target(self):
        assert Instruction(Opcode.RET).is_branch

    def test_invalid_condition(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.CMP, dest=areg(0), srcs=(areg(1),), cond="weird")

    def test_classification_properties(self):
        load = Instruction(Opcode.VLOAD, dest=vreg(0), srcs=(areg(1),))
        assert load.is_vector and load.is_memory and load.is_load and not load.is_store
        store = Instruction(Opcode.STORE, srcs=(sreg(0), areg(1)))
        assert store.is_store and not store.is_vector

    def test_str_contains_operands(self):
        text = str(Instruction(Opcode.VADD, dest=vreg(0), srcs=(vreg(1), vreg(2))))
        assert "vadd" in text and "v0" in text and "v2" in text

    def test_spill_marker_in_str(self):
        text = str(Instruction(Opcode.VLOAD, dest=vreg(0), srcs=(areg(7),), is_spill=True))
        assert "spill" in text

    def test_count_kinds(self):
        instrs = [
            Instruction(Opcode.VADD, dest=vreg(0), srcs=(vreg(1), vreg(2))),
            Instruction(Opcode.VLOAD, dest=vreg(0), srcs=(areg(0),)),
            Instruction(Opcode.VLOAD, dest=vreg(1), srcs=(areg(0),)),
        ]
        counts = count_kinds(instrs)
        assert counts[InstrKind.VECTOR_ALU] == 1
        assert counts[InstrKind.VECTOR_LOAD] == 2

    def test_unique_uids(self):
        a = Instruction(Opcode.RET)
        b = Instruction(Opcode.RET)
        assert a.uid != b.uid


class TestProgram:
    def _program(self):
        program = Program("demo")
        entry = program.add_block("entry")
        entry.append(Instruction(Opcode.LI, dest=areg(0), imm=3))
        body = program.add_block("body")
        body.append(Instruction(Opcode.SUB, dest=areg(0), srcs=(areg(0),), imm=1))
        body.append(Instruction(Opcode.BR, srcs=(areg(0),), cond="gt", imm=0, target="body"))
        return program

    def test_validate_accepts_well_formed(self):
        self._program().validate()

    def test_duplicate_label_rejected(self):
        program = self._program()
        with pytest.raises(TraceError):
            program.add_block("body")

    def test_unknown_branch_target_rejected(self):
        program = self._program()
        program.block("body").append(
            Instruction(Opcode.JMP, target="nowhere")
        )
        with pytest.raises(TraceError):
            program.validate()

    def test_block_lookup(self):
        program = self._program()
        assert program.block("entry").label == "entry"
        assert program.block_index("body") == 1
        with pytest.raises(TraceError):
            program.block("missing")

    def test_entry_and_len(self):
        program = self._program()
        assert program.entry.label == "entry"
        assert len(program) == 3

    def test_empty_program_has_no_entry(self):
        with pytest.raises(TraceError):
            Program("empty").entry

    def test_static_counts(self):
        counts = self._program().static_counts()
        assert counts[InstrKind.SCALAR_ALU] == 2
        assert counts[InstrKind.BRANCH] == 1

    def test_terminator(self):
        program = self._program()
        assert program.block("body").terminator is not None
        assert program.block("entry").terminator is None

    def test_str_rendering(self):
        assert "body:" in str(self._program())
