"""Chunked-simulation equivalence battery (:mod:`repro.parallel`).

The one invariant the subsystem promises: for any workload, configuration
and chunk size, the chunked simulator — speculative acceptance, exact
replay, chunk-store resume, process pools, any mix — produces a
:class:`~repro.common.stats.SimStats` **identical** to the monolithic run,
down to the stall-cycle counters and busy intervals behind every figure.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import get_config, machine_config, standard_configs
from repro.core.machines import machine_names
from repro.core.runner import ExperimentEngine, ExperimentSpec, ResultStore, set_engine
from repro.core.settings import ExecutionPlan
from repro.core.simulator import simulate_trace
from repro.parallel import ChunkStore, ChunkedSimulation, simulate_trace_chunked
from repro.parallel.boundary import quiescent, structural_digest, structural_of
from repro.parallel.chunkstore import CHUNK_STORE_VERSION
from repro.parallel.scout import plan_chunks, plan_cut_points
from repro.workloads.registry import WORKLOAD_NAMES, get_workload


CONFIG_NAMES = tuple(standard_configs())

#: both stepper kernels — the equivalence battery runs under each, so the
#: chunked driver's replay/worker paths are exercised on the batched kernel
#: exactly as on the scalar one
KERNELS = ("scalar", "batched")


@pytest.fixture(autouse=True)
def _isolated_default_engine():
    set_engine(None)
    yield
    set_engine(None)


def _trace(workload: str, scale: str = "small"):
    return get_workload(workload, scale).trace()


def _mono_stats(trace, config, kernel="scalar"):
    return simulate_trace(trace, config, kernel=kernel).stats.to_dict()


def _chunked_stats(trace, config, chunk_size, **kwargs):
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("speculate", "always")
    sim = ChunkedSimulation(trace, config.params, chunk_size=chunk_size, **kwargs)
    return sim.run().to_dict(), sim.report


class TestEquivalenceEveryWorkload:
    """ISSUE: every workload at small scale, any chunk size, identical stats."""

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    def test_small_scale_identical_stats(self, workload, kernel):
        # rotate configurations across workloads so the battery covers all
        # five machines without simulating the full cross product twice
        config = get_config(
            CONFIG_NAMES[WORKLOAD_NAMES.index(workload) % len(CONFIG_NAMES)])
        trace = _trace(workload)
        mono = _mono_stats(trace, config)
        for chunk_size in (211, 1024):
            chunked, report = _chunked_stats(trace, config, chunk_size,
                                             kernel=kernel)
            assert chunked == mono, (workload, config.name, chunk_size, kernel)
            assert report.merged() + report.replayed == report.chunks

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("config_name", CONFIG_NAMES)
    def test_every_config_on_one_workload(self, config_name, kernel):
        config = get_config(config_name)
        trace = _trace("tomcatv")
        mono = _mono_stats(trace, config)
        for mode in ("always", "never", "auto"):
            chunked, _ = _chunked_stats(trace, config, 389, speculate=mode,
                                        kernel=kernel)
            assert chunked == mono, (config_name, mode, kernel)

    def test_stall_counters_and_figure10_inputs_survive_chunking(self):
        # the Figure 10 exhibit reads exactly these counters; spell the
        # assertion out even though to_dict equality subsumes it
        config = get_config("ooo-late-sle-vle")
        trace = _trace("trfd")
        mono = simulate_trace(trace, config).stats
        sim = ChunkedSimulation(trace, config.params, chunk_size=300,
                                speculate="always")
        chunked = sim.run()
        assert chunked.rename_stall_cycles == mono.rename_stall_cycles
        assert chunked.rob_stall_cycles == mono.rob_stall_cycles
        assert chunked.queue_stall_cycles == mono.queue_stall_cycles
        assert chunked.lost_decode_cycles() == mono.lost_decode_cycles()
        assert chunked.state_breakdown() == mono.state_breakdown()


class TestEquivalenceProperty:
    """Any chunk size — including degenerate ones — yields identical stats."""

    @given(
        chunk_size=st.integers(min_value=1, max_value=700),
        config_name=st.sampled_from(CONFIG_NAMES),
        kernel=st.sampled_from(KERNELS),
    )
    @settings(max_examples=10, deadline=None)
    def test_arbitrary_chunk_sizes(self, chunk_size, config_name, kernel):
        config = get_config(config_name)
        trace = _trace("su2cor", "tiny")
        chunked, _ = _chunked_stats(trace, config, chunk_size, kernel=kernel)
        assert chunked == _mono_stats(trace, config)

    # every registered machine model (and the fully loaded OOOVA variant),
    # arbitrary chunk sizes, both kernels: envelope-accepted chunks must be
    # bit-identical to the monolithic pass
    @pytest.mark.parametrize(
        "machine", tuple(machine_names()) + ("ooo-late-sle-vle",))
    @given(
        chunk_size=st.integers(min_value=1, max_value=500),
        kernel=st.sampled_from(KERNELS),
    )
    @settings(max_examples=5, deadline=None)
    def test_envelope_acceptance_every_machine(self, machine, chunk_size,
                                               kernel):
        config = machine_config(machine)
        trace = _trace("su2cor", "tiny")
        chunked, report = _chunked_stats(trace, config, chunk_size,
                                         kernel=kernel)
        assert chunked == _mono_stats(trace, config), (machine, chunk_size)
        assert report.merged() + report.replayed == report.chunks

    def test_chunk_size_one_and_trace_length(self):
        config = get_config("reference")
        trace = _trace("nasa7", "tiny")
        mono = _mono_stats(trace, config)
        for chunk_size in (1, len(trace), len(trace) + 7):
            chunked, _ = _chunked_stats(trace, config, chunk_size)
            assert chunked == mono


class TestPlanning:
    def test_cut_points_cover_trace(self):
        trace = _trace("tomcatv", "tiny")
        cuts = plan_cut_points(trace, 100)
        assert cuts[0] == 0
        assert cuts == sorted(set(cuts))
        assert all(0 <= cut < len(trace) for cut in cuts)

    def test_scout_predicts_true_structural_state_at_every_cut(self):
        # the structural projection is stream-determined: the scout's
        # prediction must match the true machine at every cut, regardless
        # of whether the cut is quiescent
        config = get_config("ooo-late-sle-vle")
        trace = _trace("hydro2d", "tiny")
        plans = plan_chunks(trace, config.params, 80)
        from repro.parallel.driver import _make_run

        parent = _make_run(config.params, trace.name)
        position = 0
        for plan in plans:
            parent.run_slice(trace.instructions[position:plan.start])
            position = plan.start
            digest = structural_digest(structural_of(parent))
            assert digest == plan.entry_digest, plan.index

    def test_reference_plans_have_no_structural_state(self):
        trace = _trace("nasa7", "tiny")
        plans = plan_chunks(trace, get_config("reference").params, 50)
        assert all(plan.entry_structural is None for plan in plans)
        assert len({plan.entry_digest for plan in plans}) == 1


class TestSnapshotRestore:
    # every registered machine (via the registry, not a hand-kept list),
    # plus the fully loaded OOOVA variant for load-elimination coverage
    @pytest.mark.parametrize(
        "config_name", tuple(machine_names()) + ("ooo-late-sle-vle",))
    def test_mid_run_snapshot_resumes_identically(self, config_name):
        config = machine_config(config_name)
        trace = _trace("flo52", "tiny")
        from repro.parallel.driver import _make_run

        full = _make_run(config.params, trace.name)
        full.run_slice(trace)
        expected = full.finalise().to_dict()

        first = _make_run(config.params, trace.name)
        first.run_slice(trace.instructions[:200])
        state = first.snapshot()
        assert json.dumps(state)  # JSON-compatible by contract

        second = _make_run(config.params, trace.name)
        second.restore(state)
        second.run_slice(trace.instructions[200:])
        assert second.finalise().to_dict() == expected

    def test_quiescence_of_fresh_machines(self):
        from repro.parallel.driver import _make_run

        for name in machine_names():
            run = _make_run(machine_config(name).params, "t")
            assert quiescent(run)


class TestPoolExecution:
    def test_pool_matches_monolithic(self):
        config = get_config("reference")
        trace = _trace("tomcatv")
        mono = _mono_stats(trace, config)
        try:
            chunked, report = _chunked_stats(
                trace, config, 257, jobs=2, speculate="auto")
        except OSError:
            pytest.skip("process pools unavailable in this sandbox")
        assert chunked == mono
        assert report.chunks > 1

    def test_pool_warm_store_counts_each_hit_once(self, tmp_path):
        config = get_config("reference")
        trace = _trace("tomcatv", "tiny")
        mono = _mono_stats(trace, config)
        try:
            _chunked_stats(trace, config, 150, jobs=2, speculate="auto",
                           chunk_store=ChunkStore(tmp_path),
                           point_fingerprint="fp-pool")
        except OSError:
            pytest.skip("process pools unavailable in this sandbox")
        warm_store = ChunkStore(tmp_path)
        warm, report = _chunked_stats(
            trace, config, 150, jobs=2, speculate="auto",
            chunk_store=warm_store, point_fingerprint="fp-pool")
        assert warm == mono
        # the submit path hands parsed entries to the stitcher; each store
        # entry must be read (and counted) at most once
        assert warm_store.hits <= report.cache_hits + report.chunks

    def test_scout_failure_mid_wave_degrades_to_replay(self, monkeypatch):
        # a scout that dies after a few chunks must leave the run on the
        # exact-replay path (sticky _plan failure), never raise through
        from repro.parallel import scout as scout_module

        config = get_config("ooo")
        trace = _trace("tomcatv", "tiny")
        mono = _mono_stats(trace, config)
        calls = {"n": 0}
        original = scout_module.StructuralScout.step

        def failing_step(self, dyn):
            calls["n"] += 1
            if calls["n"] > 250:
                from repro.common.errors import SimulationError
                raise SimulationError("scout gave up (injected)")
            return original(self, dyn)

        monkeypatch.setattr(scout_module.StructuralScout, "step", failing_step)
        try:
            chunked, report = _chunked_stats(
                trace, config, 150, jobs=2, speculate="always")
        except OSError:
            pytest.skip("process pools unavailable in this sandbox")
        assert chunked == mono
        assert report.replayed >= 1


class TestAutoBackoffIsolation:
    """Auto-backoff state is per-run: a hostile point never poisons the next.

    The backoff counters live as locals of one ``ChunkedSimulation._stitch``
    call; this pins that contract so a refactor hoisting them to module or
    class state (where a speculation-hostile OOO point would disable
    speculation for every later point of a sweep) fails loudly.
    """

    def test_backoff_does_not_leak_across_points(self, tmp_path):
        hostile = get_config("ooo-late-sle-vle")
        friendly = get_config("reference")
        trace = _trace("tomcatv", "tiny")
        mono = _mono_stats(trace, friendly)

        # warm the friendly point's chunk store so a later "auto" run can
        # accept from cache even without a worker pool
        _chunked_stats(trace, friendly, 150,
                       chunk_store=ChunkStore(tmp_path),
                       point_fingerprint="fp-friendly")

        # the deep OOO pipeline misses its first cuts: auto-backoff fires
        _, hostile_report = _chunked_stats(trace, hostile, 150,
                                           speculate="auto")
        assert hostile_report.backoff_at >= 0

        # a fresh simulation immediately after must speculate from scratch
        chunked, report = _chunked_stats(
            trace, friendly, 150, speculate="auto",
            chunk_store=ChunkStore(tmp_path),
            point_fingerprint="fp-friendly")
        assert chunked == mono
        assert report.backoff_at == -1
        assert report.accepted > 0

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_backoff_runs_are_still_bit_identical(self, kernel):
        config = get_config("ooo-late-sle-vle")
        trace = _trace("tomcatv", "tiny")
        chunked, report = _chunked_stats(trace, config, 150,
                                         speculate="auto", kernel=kernel)
        assert report.backoff_at >= 0
        assert chunked == _mono_stats(trace, config)

    def test_backoff_rearms_after_successful_probe(self, tmp_path,
                                                   monkeypatch):
        """Backoff is no longer sticky: one hostile region of a trace must
        not disable speculation for the whole remainder of the point.

        Force the first speculative merges to miss (tripping auto-backoff),
        with a pre-seeded chunk store so the periodic probe can succeed —
        the probe must re-arm speculation and later chunks must merge again.
        """
        config = get_config("reference")
        trace = _trace("tomcatv", "small")
        mono = _mono_stats(trace, config)
        # seed the store so probes (and post-re-arm chunks) accept from it
        _chunked_stats(trace, config, 150, chunk_store=ChunkStore(tmp_path),
                       point_fingerprint="fp-rearm")

        original = ChunkedSimulation._try_chunk

        def deny_early(self, parent, plan, pool):
            if 1 <= plan.index <= 2:  # a locally hostile region
                self._demote(plan)
                self._run_slice(parent, self._instructions(plan))
                return False
            return original(self, parent, plan, pool)

        monkeypatch.setattr(ChunkedSimulation, "_try_chunk", deny_early)
        chunked, report = _chunked_stats(
            trace, config, 150, speculate="auto",
            chunk_store=ChunkStore(tmp_path), point_fingerprint="fp-rearm")
        assert report.backoff_at >= 0
        assert report.rearms >= 1
        assert report.merged() > 0  # speculation resumed after the re-arm
        assert chunked == mono


class TestTamperedEnvelopeRejection:
    """A worker claim the parent cannot *prove* is never merged.

    The envelope acceptance is a proof obligation, not a trust relationship:
    a cached payload whose checkpoints mis-state the worker's pending work
    (an envelope digest the parent never reproduces, or a horizon the
    parent does not dominate) must demote to exact replay — and the final
    statistics must stay bit-identical regardless.
    """

    def _tampered_run(self, tmp_path, mutate):
        config = get_config("reference")
        trace = _trace("tomcatv", "tiny")
        cold, cold_report = _chunked_stats(
            trace, config, 150, chunk_store=ChunkStore(tmp_path),
            point_fingerprint="fp-tamper")
        assert cold_report.merged() > 0  # the untampered point does merge
        for path in tmp_path.glob("??/*.json"):
            payload = json.loads(path.read_text())
            for checkpoint in payload["state"]["checkpoints"]:
                mutate(checkpoint)
            path.write_text(json.dumps(payload))
        warm, report = _chunked_stats(
            trace, config, 150, chunk_store=ChunkStore(tmp_path),
            point_fingerprint="fp-tamper")
        return warm, report, _mono_stats(trace, config)

    def test_understated_envelope_is_rejected(self, tmp_path):
        # the checkpoints claim a pending-work envelope the worker did not
        # actually have; the parent can never reproduce the fabricated
        # digest, so every cached chunk replays
        warm, report, mono = self._tampered_run(
            tmp_path, lambda c: c.update(envelope="0" * 64))
        assert warm == mono
        assert report.merged() == 0
        assert report.replayed == report.chunks

    def test_undominated_horizon_is_rejected(self, tmp_path):
        # correct envelopes, but the worker assumed pending work reaching
        # further than the parent's: dominance fails, nothing merges
        warm, report, mono = self._tampered_run(
            tmp_path, lambda c: c.update(horizon=10**9))
        assert warm == mono
        assert report.merged() == 0
        assert report.replayed == report.chunks


class TestChunkStore:
    def test_cold_stores_then_warm_hits(self, tmp_path):
        config = get_config("reference")
        trace = _trace("tomcatv", "tiny")
        mono = _mono_stats(trace, config)

        cold_store = ChunkStore(tmp_path)
        cold, cold_report = _chunked_stats(
            trace, config, 150, chunk_store=cold_store,
            point_fingerprint="fp-x")
        assert cold == mono
        assert cold_store.stored == cold_report.merged() > 0

        warm_store = ChunkStore(tmp_path)
        warm, warm_report = _chunked_stats(
            trace, config, 150, chunk_store=warm_store,
            point_fingerprint="fp-x")
        assert warm == mono
        assert warm_report.cache_hits == cold_report.merged()
        assert warm_store.hits == warm_report.cache_hits

    def test_different_fingerprint_misses(self, tmp_path):
        config = get_config("reference")
        trace = _trace("tomcatv", "tiny")
        store = ChunkStore(tmp_path)
        _chunked_stats(trace, config, 150, chunk_store=store,
                       point_fingerprint="fp-a")
        other = ChunkStore(tmp_path)
        _, report = _chunked_stats(trace, config, 150, chunk_store=other,
                                   point_fingerprint="fp-b")
        assert report.cache_hits == 0

    def test_gc_evicts_stale_versions(self, tmp_path):
        store = ChunkStore(tmp_path)
        store.put("ab" + "0" * 62, {"kind": "ref"}, info={})
        stale = tmp_path / "cd" / ("cd" + "1" * 62 + ".json")
        stale.parent.mkdir(parents=True)
        stale.write_text(json.dumps(
            {"version": CHUNK_STORE_VERSION - 1, "state": {}}))
        (tmp_path / "ef").mkdir()
        (tmp_path / "ef" / "broken.json").write_text("{not json")
        kept, evicted = ChunkStore(tmp_path).gc()
        assert kept == 1
        assert evicted == 2


class TestEngineIntegration:
    def test_chunked_engine_matches_plain_engine(self, tmp_path):
        spec = ExperimentSpec.grid(
            "chunked-vs-plain",
            workloads=("tomcatv", "trfd"),
            configs=(get_config("reference"), get_config("ooo")),
            scale="tiny",
        )
        plain = ExperimentEngine(ResultStore()).run_spec(spec)
        chunked_engine = ExperimentEngine(
            ResultStore(tmp_path), plan=ExecutionPlan(intra_jobs=1, chunk_size=150))
        chunked = chunked_engine.run_spec(spec)
        for point in spec.points:
            assert chunked[point].stats.to_dict() == plain[point].stats.to_dict()
        assert chunked_engine.chunks_accepted + chunked_engine.chunks_replayed > 0
        assert "chunked x150" in chunked_engine.summary()
        # accepted speculative chunks were persisted under derived keys
        assert chunked_engine.chunk_store is not None
        if chunked_engine.chunks_accepted:
            # the final results are themselves disk-cached, so exercise the
            # chunk cache with a fresh memory-only result store that shares
            # only the chunk store
            fresh = ExperimentEngine(
                ResultStore(), plan=ExecutionPlan(intra_jobs=1, chunk_size=150))
            fresh.chunk_store = chunked_engine.chunk_store
            fresh.run_spec(spec)
            assert fresh.chunk_cache_hits > 0

    def test_engine_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ExperimentEngine(ResultStore(), plan=ExecutionPlan(intra_jobs=0))
        with pytest.raises(ValueError):
            ExperimentEngine(ResultStore(), plan=ExecutionPlan(chunk_size=-1))


class TestSimulateTraceChunked:
    def test_wraps_result_with_config_identity(self):
        config = get_config("ooo")
        trace = _trace("nasa7", "tiny")
        result, report = simulate_trace_chunked(trace, config, chunk_size=100)
        assert result.workload == trace.name
        assert result.config_name == "ooo"
        assert result.stats.to_dict() == _mono_stats(trace, config)
        assert report.chunks >= 1

    def test_empty_trace_rejected(self):
        from repro.common.errors import SimulationError
        from repro.trace.records import Trace

        with pytest.raises(SimulationError):
            ChunkedSimulation(Trace("empty"), get_config("ooo").params)

    def test_bad_chunk_size_rejected(self):
        from repro.common.errors import SimulationError

        trace = _trace("nasa7", "tiny")
        with pytest.raises(SimulationError):
            ChunkedSimulation(trace, get_config("ooo").params, chunk_size=0)
        with pytest.raises(SimulationError):
            ChunkedSimulation(trace, get_config("ooo").params,
                              chunk_size=10, speculate="sometimes")
