"""Seeded envelope-contract defects for the check-pass test corpus.

``LeakyStation`` merges worker exit snapshots (``absorb``) without
projecting its pending work — no ``envelope`` anywhere in its MRO, so a
machine containing it silently loses envelope acceptance.
``NoisyStation.envelope`` violates read-only-ness twice: it mutates the
component (``self.probed``) and reaches an ambient effect
(``os.getpid``).  The envelope-contract pass (exit bit 16) must report
all three defects.
"""

import os


class LeakyStation:
    def __init__(self):
        self.pending = []

    def snapshot(self):
        return list(self.pending)

    def restore(self, state):
        self.pending = list(state)

    def reset(self):
        self.pending = []

    def absorb(self, state, delta):
        self.pending = [cycle + delta for cycle in state]


class NoisyStation:
    def __init__(self):
        self.pending = []
        self.probed = 0

    def absorb(self, state, delta):
        self.pending = [cycle + delta for cycle in state]

    def envelope(self, anchor):
        self.probed += 1
        tag = os.getpid()
        return [cycle - anchor for cycle in self.pending if cycle > anchor], tag
