"""Seeded ambient-effects defect for the check-pass test corpus.

``run_slice`` is a simulation entry point; two innocently named hops
away it reaches the process id and a fresh UUID, so the slice result
depends on ambient process state.  The ambient-effects pass (exit bit
64) must report both effects with the full call path
``run_slice -> _trace_label -> _worker_identity``.
"""

import os
import uuid


def run_slice(machine, budget):
    tag = _trace_label()
    for _ in range(budget):
        machine.step()
    return tag


def _trace_label():
    return _worker_identity()


def _worker_identity():
    return f"{os.getpid()}-{uuid.uuid4().hex}"
