"""Seeded fleet-protocol defects for the check-pass test corpus.

Four violations, one per lint the fleet-protocol pass (exit bit 128)
enforces: a hardcoded ``queue/`` key literal, an inline f-string
splicing ``self.prefix`` outside the designated key helpers, a raw
``time.time()`` read inside a clock-injected class, and a ``Thread``
subclass assigning shared state its ``__init__`` never declares.  The
file name deliberately contains ``fleet`` — that is what routes it to
this pass instead of the determinism family.
"""

import threading
import time


class BadQueue:
    def __init__(self, store, clock=time.time):
        self.store = store
        self.prefix = "queue/jobs"
        self.clock = clock

    def put(self, task_id, payload):
        key = f"{self.prefix}/tasks/{task_id}.json"
        self.store.put(key, payload)

    def claim_stamp(self):
        return time.time()


class BadHeartbeat(threading.Thread):
    def __init__(self):
        super().__init__(daemon=True)

    def run(self):
        self.beats = 1
