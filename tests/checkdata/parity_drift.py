"""Seeded kernel-parity defect for the check-pass test corpus.

``ToyMachine``'s scalar kernel dispatches three instruction kinds, but
the registered batched stepper only branches on two of them:
``InstrKind.VECTOR_LOAD`` silently falls into the default arm and the
two kernels diverge.  ``tests/test_checks.py`` asserts the
kernel-parity pass (exit bit 32) pins this to the ``DISPATCH`` table.

The module is self-contained test data — ``register_stepper`` is a
local stand-in and the ``K_*`` codes resolve through the naming
convention, so the checker needs no other module to prove the drift.
"""


class InstrKind:
    SCALAR_ALU = 0
    VECTOR_ALU = 1
    VECTOR_LOAD = 2


K_SCALAR_ALU = 0
K_VECTOR_ALU = 1
K_VECTOR_LOAD = 2


class ToyMachine:
    DISPATCH = {
        InstrKind.SCALAR_ALU: "_run_scalar",
        InstrKind.VECTOR_ALU: "_run_vector_alu",
        InstrKind.VECTOR_LOAD: "_run_vector_load",
    }
    DEFAULT_HANDLER = "_run_scalar"

    def _run_scalar(self, instr):
        return instr

    def _run_vector_alu(self, instr):
        return instr

    def _run_vector_load(self, instr):
        return instr


def _step_toy(machine, lowered):
    for start, stop, kc in lowered.segments:
        if kc == K_SCALAR_ALU:
            machine._run_scalar((start, stop))
        elif kc == K_VECTOR_ALU:
            machine._run_vector_alu((start, stop))
        else:
            machine._run_scalar((start, stop))


def register_stepper(cls, fn):
    return fn


register_stepper(ToyMachine, _step_toy)
