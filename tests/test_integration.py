"""End-to-end and property-based integration tests.

These tests exercise the full pipeline — IR → compiler → trace → both
simulators → statistics — on randomly generated kernels and check the
invariants that must hold regardless of the kernel: traces are identical
across machines, resource accounting partitions time, elimination never
loses work, and the OOOVA with ample resources is never slower than with
scarce ones.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import CommitModel, LoadElimination, OOOParams, ReferenceParams
from repro.compiler import ir
from repro.compiler.pipeline import compile_kernel
from repro.ooo.machine import simulate_ooo
from repro.refsim.machine import simulate_reference
from repro.trace.generator import generate_trace
from repro.trace.stats import compute_trace_statistics


@st.composite
def kernels(draw):
    """Generate a small random kernel touching the major IR features."""
    n_arrays = draw(st.integers(min_value=2, max_value=6))
    trip = draw(st.sampled_from([48, 96, 200]))
    max_vl = draw(st.sampled_from([32, 64, 128]))
    arrays = [ir.Array(f"arr{i}", trip + 8) for i in range(n_arrays)]
    out = ir.Array("out", trip + 8)

    n_terms = draw(st.integers(min_value=1, max_value=4))
    expr = arrays[0].ref()
    for i in range(n_terms):
        source = arrays[(i + 1) % n_arrays]
        op = draw(st.sampled_from(["+", "*", "-"]))
        expr = ir.BinOp(op, expr, source.ref(offset=draw(st.integers(0, 2))))
    if draw(st.booleans()):
        expr = expr * ir.ScalarOperand("alpha", 1.5)
    if draw(st.booleans()):
        expr = ir.sqrt(expr)

    statements = [ir.VectorAssign(out.ref(), expr)]
    if draw(st.booleans()):
        statements.append(ir.Reduce(out.ref(), "acc"))

    loop = ir.VectorLoop("body", trip=trip, statements=tuple(statements), max_vl=max_vl)
    items = [loop]
    if draw(st.booleans()):
        items.append(ir.ScalarWork("bookkeeping", alu_ops=draw(st.integers(0, 6)),
                                   loads=draw(st.integers(0, 3)), stores=1))
    outer = draw(st.integers(min_value=1, max_value=3))
    kernel = ir.Kernel("generated")
    kernel.add(ir.Loop("outer", outer, tuple(items)))
    return kernel


@settings(max_examples=15, deadline=None)
@given(kernels())
def test_full_pipeline_invariants(kernel):
    result = compile_kernel(kernel)
    result.program.validate()
    trace = generate_trace(result.program)
    assert len(trace) > 0

    stats = compute_trace_statistics(trace)
    assert stats.vector_operations >= 0
    assert 0 <= stats.vectorization_percent <= 100.0

    ref = simulate_reference(trace, ReferenceParams())
    ooo = simulate_ooo(trace, OOOParams(num_phys_vregs=16))

    # Both machines execute exactly the same dynamic work.
    assert ref.vector_operations == ooo.vector_operations == stats.vector_operations
    assert ref.traffic.total_ops == ooo.traffic.total_ops

    # Time accounting is self-consistent on both machines.
    for machine in (ref, ooo):
        assert machine.cycles > 0
        assert machine.address_port_busy_cycles <= machine.cycles
        assert sum(machine.state_breakdown().values()) == machine.cycles
        assert machine.ideal_cycles() <= machine.cycles

    # Renaming plus out-of-order issue never loses to the in-order machine
    # by more than a whisker (it has strictly more freedom).
    assert ooo.cycles <= ref.cycles * 1.05


@settings(max_examples=8, deadline=None)
@given(kernels())
def test_load_elimination_preserves_work(kernel):
    trace = generate_trace(compile_kernel(kernel).program)
    base = OOOParams(num_phys_vregs=32, commit_model=CommitModel.LATE)
    baseline = simulate_ooo(trace, base)
    vle = simulate_ooo(trace, dataclasses.replace(base,
                                                  load_elimination=LoadElimination.SLE_VLE))
    assert vle.vector_operations == baseline.vector_operations
    assert vle.traffic.total_ops + vle.traffic.total_eliminated_ops == baseline.traffic.total_ops
    assert vle.cycles <= baseline.cycles * 1.10


@settings(max_examples=8, deadline=None)
@given(kernels(), st.sampled_from([1, 50, 100]))
def test_latency_monotonicity(kernel, latency):
    trace = generate_trace(compile_kernel(kernel).program)
    ref_low = simulate_reference(trace, ReferenceParams().with_memory_latency(1))
    ref_here = simulate_reference(trace, ReferenceParams().with_memory_latency(latency))
    assert ref_here.cycles >= ref_low.cycles


class TestExampleScripts:
    """The shipped examples must stay runnable."""

    @pytest.mark.parametrize("script", ["quickstart", "latency_tolerance",
                                        "load_elimination", "custom_kernel"])
    def test_examples_importable_and_runnable(self, script, capsys, monkeypatch):
        import importlib.util
        import os
        import sys

        path = os.path.join(os.path.dirname(__file__), "..", "examples", f"{script}.py")
        spec = importlib.util.spec_from_file_location(f"example_{script}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        if script == "quickstart":
            monkeypatch.setattr(sys, "argv", ["quickstart", "trfd"])
        elif script in ("latency_tolerance", "load_elimination"):
            monkeypatch.setattr(sys, "argv", [script, "trfd"])
        else:
            monkeypatch.setattr(sys, "argv", [script])
        assert module.main() == 0
        output = capsys.readouterr().out
        assert output.strip()
