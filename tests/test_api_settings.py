"""Precedence and validation tests for :class:`repro.api.Settings`.

The contract under test: **explicit kwargs > environment > defaults**,
with explicitly passed falsy values (``0``, ``None``) beating a set
environment variable, strict validation of explicit values, and the
engine's historical tolerance (fallback/clamping) for sloppy environment
values.
"""

import dataclasses

import pytest

from repro.api import (
    CACHE_DIR_ENV,
    CHUNK_SIZE_ENV,
    INTRA_JOBS_ENV,
    JOBS_ENV,
    Settings,
)
from repro.common.errors import ReproError
from repro.core.store import STORE_ENV


class TestDefaults:
    def test_empty_environment_gives_documented_defaults(self):
        settings = Settings.resolve(env={})
        assert settings.cache_dir is None
        assert settings.store == "json"
        assert settings.jobs == 1
        assert settings.intra_jobs == 1
        assert settings.chunk_size == 0
        assert settings.explicit == frozenset()

    def test_resolve_defaults_to_process_environment(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert Settings.resolve().jobs == 7


class TestEnvironmentLayer:
    def test_env_values_apply_when_not_explicit(self):
        env = {
            CACHE_DIR_ENV: "/tmp/cache",
            STORE_ENV: "sqlite",
            JOBS_ENV: "4",
            INTRA_JOBS_ENV: "2",
            CHUNK_SIZE_ENV: "512",
        }
        settings = Settings.resolve(env=env)
        assert settings.cache_dir == "/tmp/cache"
        assert settings.store == "sqlite"
        assert settings.jobs == 4
        assert settings.intra_jobs == 2
        assert settings.chunk_size == 512
        assert settings.explicit == frozenset()

    def test_empty_env_cache_dir_means_disabled(self):
        assert Settings.resolve(env={CACHE_DIR_ENV: ""}).cache_dir is None

    @pytest.mark.parametrize("bad", ["abc", "1.5", " "])
    def test_unparsable_env_integers_fall_back_to_defaults(self, bad):
        env = {JOBS_ENV: bad, INTRA_JOBS_ENV: bad, CHUNK_SIZE_ENV: bad}
        settings = Settings.resolve(env=env)
        assert (settings.jobs, settings.intra_jobs, settings.chunk_size) == (1, 1, 0)

    def test_out_of_range_env_integers_are_clamped(self):
        env = {JOBS_ENV: "0", INTRA_JOBS_ENV: "-3", CHUNK_SIZE_ENV: "-100"}
        settings = Settings.resolve(env=env)
        assert (settings.jobs, settings.intra_jobs, settings.chunk_size) == (1, 1, 0)

    def test_invalid_env_store_is_an_error(self):
        with pytest.raises(ReproError, match="blockchain"):
            Settings.resolve(env={STORE_ENV: "blockchain"})

    def test_object_store_is_a_recognised_env_value(self):
        assert Settings.resolve(env={STORE_ENV: "object"}).store == "object"


class TestExplicitLayer:
    def test_explicit_beats_environment(self):
        env = {JOBS_ENV: "4", STORE_ENV: "sqlite", CACHE_DIR_ENV: "/tmp/env"}
        settings = Settings.resolve(
            jobs=2, store="json", cache_dir="/tmp/mine", env=env)
        assert settings.jobs == 2
        assert settings.store == "json"
        assert settings.cache_dir == "/tmp/mine"
        assert settings.explicit == {"jobs", "store", "cache_dir"}

    def test_falsy_explicit_chunk_size_beats_environment(self):
        settings = Settings.resolve(chunk_size=0, env={CHUNK_SIZE_ENV: "512"})
        assert settings.chunk_size == 0
        assert "chunk_size" in settings.explicit

    def test_explicit_none_cache_dir_beats_environment(self):
        settings = Settings.resolve(
            cache_dir=None, env={CACHE_DIR_ENV: "/tmp/persist"})
        assert settings.cache_dir is None
        assert "cache_dir" in settings.explicit

    def test_explicit_empty_cache_dir_normalises_to_none(self):
        assert Settings.resolve(cache_dir="", env={}).cache_dir is None

    def test_path_like_cache_dir_accepted(self, tmp_path):
        assert Settings.resolve(cache_dir=tmp_path, env={}).cache_dir == str(tmp_path)

    @pytest.mark.parametrize(
        "kwargs",
        [{"jobs": 0}, {"jobs": -1}, {"intra_jobs": 0}, {"chunk_size": -1},
         {"jobs": "nope"}, {"store": "blockchain"}],
    )
    def test_invalid_explicit_values_raise(self, kwargs):
        with pytest.raises(ReproError):
            Settings.resolve(env={}, **kwargs)

    def test_explicit_store_does_not_consult_environment(self):
        # a bogus environment value must not break an explicit choice
        settings = Settings.resolve(store="json", env={STORE_ENV: "blockchain"})
        assert settings.store == "json"


class TestOverride:
    def test_override_records_explicitness(self):
        base = Settings.resolve(env={JOBS_ENV: "4"})
        derived = base.override(chunk_size=256)
        assert derived.jobs == 4  # carried over, still env-derived
        assert derived.chunk_size == 256
        assert "chunk_size" in derived.explicit

    def test_override_validates(self):
        with pytest.raises(ReproError):
            Settings.resolve(env={}).override(jobs=0)
        with pytest.raises(ReproError, match="unknown settings field"):
            Settings.resolve(env={}).override(velocity=11)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            Settings.resolve(env={}).jobs = 9  # type: ignore[misc]
