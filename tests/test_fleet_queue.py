"""Unit tests for the object-store lease queue (:mod:`repro.fleet.queue`).

Everything here runs against a real filesystem-rooted
:class:`~repro.core.objectstore.ObjectStore` but with an *injected clock*,
so lease expiry, reclamation and dead-lettering are exercised without any
sleeping.  ``claim_grace=0`` skips the race read-back delay — these tests
are single-process, so there is no straggler to detect.
"""

import pytest

from repro.common.errors import ReproError
from repro.core.objectstore import ObjectStore
from repro.fleet.queue import (
    Lease,
    LeaseLostError,
    LeaseQueue,
    TaskState,
)


class FakeClock:
    """A manually advanced wall clock."""

    def __init__(self, start: float = 1_000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def queue(tmp_path, clock):
    return LeaseQueue(
        ObjectStore(tmp_path), lease_ttl=30.0, retry_budget=3,
        clock=clock, claim_grace=0.0,
    )


def payload_for(task_id: str) -> dict:
    return {"kind": "test", "id": task_id}


class TestSubmit:
    def test_submit_then_state_is_pending(self, queue):
        assert queue.submit("t1", payload_for("t1")) is True
        assert queue.state("t1") == TaskState.PENDING
        assert queue.payload("t1") == payload_for("t1")

    def test_submit_is_idempotent(self, queue):
        assert queue.submit("t1", payload_for("t1")) is True
        assert queue.submit("t1", payload_for("t1")) is False
        assert list(queue.task_ids()) == ["t1"]

    def test_submit_does_not_disturb_done_tasks(self, queue):
        queue.submit("t1", payload_for("t1"))
        lease = queue.claim("w1")
        queue.complete(lease)
        assert queue.submit("t1", payload_for("t1")) is False
        assert queue.state("t1") == TaskState.DONE

    def test_invalid_task_ids_rejected(self, queue):
        with pytest.raises(ReproError, match="invalid task id"):
            queue.submit("", payload_for(""))
        with pytest.raises(ReproError, match="invalid task id"):
            queue.submit("a/b", payload_for("a/b"))

    def test_unknown_task_is_absent(self, queue):
        assert queue.state("nope") == TaskState.ABSENT
        assert queue.payload("nope") is None


class TestClaim:
    def test_claim_returns_a_lease(self, queue, clock):
        queue.submit("t1", payload_for("t1"))
        lease = queue.claim("w1")
        assert isinstance(lease, Lease)
        assert lease.task_id == "t1"
        assert lease.worker == "w1"
        assert lease.attempt == 0
        assert lease.expires_at == clock.now + 30.0
        assert lease.payload == payload_for("t1")
        assert queue.state("t1") == TaskState.CLAIMED

    def test_claim_empty_queue_returns_none(self, queue):
        assert queue.claim("w1") is None

    def test_live_lease_blocks_other_workers(self, queue):
        queue.submit("t1", payload_for("t1"))
        assert queue.claim("w1") is not None
        assert queue.claim("w2") is None  # single winner

    def test_claims_scan_tasks_in_sorted_order(self, queue):
        queue.submit("b", payload_for("b"))
        queue.submit("a", payload_for("a"))
        assert queue.claim("w1").task_id == "a"
        assert queue.claim("w1").task_id == "b"

    def test_done_and_dead_tasks_are_not_claimable(self, queue):
        queue.submit("t1", payload_for("t1"))
        queue.complete(queue.claim("w1"))
        assert queue.claim("w2") is None


class TestLeaseLifecycle:
    def test_renew_extends_expiry(self, queue, clock):
        queue.submit("t1", payload_for("t1"))
        lease = queue.claim("w1")
        clock.advance(20.0)
        renewed = queue.renew(lease)
        assert renewed.expires_at == clock.now + 30.0
        clock.advance(20.0)  # past the original expiry, inside the renewal
        assert queue.state("t1") == TaskState.CLAIMED

    def test_renew_after_reclaim_raises_lease_lost(self, queue, clock):
        queue.submit("t1", payload_for("t1"))
        lease = queue.claim("w1")
        clock.advance(31.0)
        queue.reap()  # the lease expired and was reclaimed
        with pytest.raises(LeaseLostError):
            queue.renew(lease)

    def test_complete_marks_done_and_releases(self, queue):
        queue.submit("t1", payload_for("t1"))
        lease = queue.claim("w1")
        queue.complete(lease, {"wall_s": 1.5})
        assert queue.state("t1") == TaskState.DONE
        assert queue.counts()["done"] == 1

    def test_fail_returns_task_to_pending_with_failure_bit(self, queue):
        queue.submit("t1", payload_for("t1"))
        state = queue.fail(queue.claim("w1"), "boom")
        assert state == TaskState.PENDING | TaskState.FAILED
        # and the task is claimable again (next attempt)
        assert queue.claim("w2").attempt == 1


class TestExpiryAndReclamation:
    def test_expired_lease_is_reclaimed_on_the_next_claim(self, queue, clock):
        queue.submit("t1", payload_for("t1"))
        queue.claim("w1")
        clock.advance(31.0)  # w1 presumed dead
        lease = queue.claim("w2")
        assert lease is not None
        assert lease.worker == "w2"
        assert lease.attempt == 1  # the expiry consumed attempt 0
        assert queue.state("t1") & TaskState.FAILED

    def test_reap_reclaims_without_any_worker(self, queue, clock):
        queue.submit("t1", payload_for("t1"))
        queue.claim("w1")
        clock.advance(31.0)
        swept = queue.reap()
        assert swept["reclaimed"] == 1
        assert queue.state("t1") == TaskState.PENDING | TaskState.FAILED

    def test_reaping_the_same_expiry_twice_charges_one_attempt(
        self, tmp_path, clock
    ):
        # two racing reapers write the SAME failure record (keyed by the
        # dead lease's claim name): the retry budget is never double-charged
        objects = ObjectStore(tmp_path)
        one = LeaseQueue(objects, clock=clock, claim_grace=0.0)
        two = LeaseQueue(objects, clock=clock, claim_grace=0.0)
        one.submit("t1", payload_for("t1"))
        one.claim("w1")
        clock.advance(31.0)
        lease_doc = one._active_lease("t1")
        one._expire("t1", lease_doc)
        two._expire("t1", lease_doc)
        assert one._failures("t1") == 1

    def test_live_lease_survives_reap(self, queue, clock):
        queue.submit("t1", payload_for("t1"))
        queue.claim("w1")
        clock.advance(10.0)  # well inside the TTL
        assert queue.reap() == {"reclaimed": 0, "buried": 0}
        assert queue.state("t1") == TaskState.CLAIMED


class TestDeadLetters:
    def drain_budget(self, queue, task_id: str) -> None:
        for _ in range(queue.retry_budget):
            lease = queue._try_claim(task_id, "w1")
            assert lease is not None
            queue.fail(lease, "poisoned")

    def test_task_is_buried_after_the_retry_budget(self, queue):
        queue.submit("t1", payload_for("t1"))
        self.drain_budget(queue, "t1")
        assert queue.state("t1") == TaskState.DEAD | TaskState.FAILED
        assert queue.claim("w1") is None
        letters = queue.dead_letters()
        assert letters["t1"]["reason"] == "poisoned"

    def test_resubmitting_a_dead_task_revives_it(self, queue):
        queue.submit("t1", payload_for("t1"))
        self.drain_budget(queue, "t1")
        assert queue.submit("t1", payload_for("t1")) is True
        assert queue.state("t1") == TaskState.PENDING  # history cleared
        lease = queue.claim("w1")
        assert lease.attempt == 0  # fresh budget
        queue.complete(lease)
        assert queue.state("t1") == TaskState.DONE

    def test_counts_tallies_every_state(self, queue):
        queue.submit("pending", payload_for("pending"))
        queue.submit("claimed", payload_for("claimed"))
        queue.submit("done", payload_for("done"))
        queue.submit("dead", payload_for("dead"))
        self.drain_budget(queue, "dead")
        assert queue.claim("w1").task_id == "claimed"
        done_lease = queue.claim("w1")
        assert done_lease.task_id == "done"
        queue.complete(done_lease)
        assert queue.counts() == {
            "pending": 1, "claimed": 1, "done": 1, "dead": 1, "failed": 1}


class TestClaimRace:
    def test_losing_entrant_backs_off_after_listing(self, queue, clock):
        # a contender whose claim is not lexicographically first among the
        # listed entrants must withdraw its claim and walk away lease-less
        queue.submit("t1", payload_for("t1"))
        # pre-plant a rival claim stamped strictly earlier than any real
        # one (claim names are timestamp-ordered, so 0 always sorts first)
        rival = f"queue/claims/t1/0000/{0:020d}-rival.json"
        queue._write(rival, {"worker": "rival", "claimed_at": clock.now})
        assert queue._try_claim("t1", "late") is None
        # the loser's own claim was withdrawn; only the rival's remains
        assert list(queue.objects.list("queue/claims/t1")) == [rival]
        assert queue._active_lease("t1") is None

    def test_readback_detects_a_straggler_lease_overwrite(self, queue, clock):
        # The narrow two-winner window: a straggler with an earlier-stamped
        # claim listed *before* our claim landed, concluded it won, and
        # overwrote the lease after our own lease write.  The confirming
        # read-back must see the foreign claim name and back off.
        queue.submit("t1", payload_for("t1"))
        straggler_lease = {
            "task": "t1",
            "claim": f"queue/claims/t1/0000/{0:020d}-straggler.json",
            "worker": "straggler",
            "attempt": 0,
            "expires_at": clock.now + queue.lease_ttl,
        }
        original_write = queue._write

        def write_then_get_overwritten(key, document):
            original_write(key, document)
            if key == queue._lease_key("t1") and document["worker"] == "fast":
                original_write(key, straggler_lease)

        queue._write = write_then_get_overwritten
        try:
            lease = queue._try_claim("t1", "fast")
        finally:
            queue._write = original_write
        assert lease is None  # backed off
        current = queue._active_lease("t1")
        assert current is not None and current["worker"] == "straggler"
        # the loser withdrew its claim object too
        entrants = list(queue.objects.list("queue/claims/t1"))
        assert all("straggler" in entry or "fast" not in entry
                   for entry in entrants)

    def test_describe_names_the_bucket(self, queue):
        assert "lease queue at" in queue.describe()
        assert "ttl=30" in queue.describe()


class TestClaimStamps:
    """Claim names must derive from the injected clock, not the wall clock.

    The fleet-protocol static check forbids raw ``time.*`` reads inside
    the clock-injected queue; these tests pin the behavioural half: the
    timestamp ordering claim entrants race on is simulated time.
    """

    @staticmethod
    def stamp_ns_of(queue, task_id: str) -> int:
        (entrant,) = queue.objects.list(queue._claims_root(task_id))
        return int(entrant.rsplit("/", 1)[-1].split("-", 1)[0])

    def test_claim_name_embeds_the_injected_clock_stamp(self, queue, clock):
        queue.submit("t1", payload_for("t1"))
        clock.advance(12.5)
        assert queue.claim("w1") is not None
        expected = int(clock.now * 1_000_000_000)
        assert self.stamp_ns_of(queue, "t1") == expected

    def test_claim_stamps_track_simulated_time(self, queue, clock):
        queue.submit("t1", payload_for("t1"))
        queue.submit("t2", payload_for("t2"))
        first = queue.claim("w1")
        clock.advance(7.0)
        second = queue.claim("w2")
        assert first is not None and second is not None
        delta = self.stamp_ns_of(queue, second.task_id) - self.stamp_ns_of(
            queue, first.task_id
        )
        assert delta == int(7.0 * 1_000_000_000)
