"""Unit tests for the trace generator (the Dixie substitute) and trace stats."""

import pytest

from repro.common.errors import TraceError
from repro.compiler import ir
from repro.compiler.pipeline import compile_kernel
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import areg, sreg, vreg
from repro.trace.generator import TraceGenerator, generate_trace
from repro.trace.records import DynInstr, Trace
from repro.trace.stats import compute_trace_statistics


def _program(instructions, name="p"):
    program = Program(name)
    block = program.add_block("entry")
    for instr in instructions:
        block.append(instr)
    return program


class TestScalarSemantics:
    def test_arithmetic_and_store_load_roundtrip(self):
        program = _program([
            Instruction(Opcode.LI, dest=areg(0), imm=0x1000),
            Instruction(Opcode.LI, dest=sreg(0), imm=21),
            Instruction(Opcode.ADD, dest=sreg(0), srcs=(sreg(0),), imm=21),
            Instruction(Opcode.STORE, srcs=(sreg(0), areg(0)), imm=8),
            Instruction(Opcode.LOAD, dest=sreg(1), srcs=(areg(0),), imm=8),
            Instruction(Opcode.STORE, srcs=(sreg(1), areg(0)), imm=16),
        ])
        trace = generate_trace(program)
        stores = [d for d in trace if d.opcode is Opcode.STORE]
        assert stores[0].address == 0x1008
        assert stores[1].address == 0x1010
        loads = [d for d in trace if d.opcode is Opcode.LOAD]
        assert loads[0].region_start == 0x1008 and loads[0].region_end == 0x1010

    def test_conditional_branch_loop(self):
        program = Program("loop")
        entry = program.add_block("entry")
        entry.append(Instruction(Opcode.LI, dest=areg(0), imm=4))
        body = program.add_block("body")
        body.append(Instruction(Opcode.SUB, dest=areg(0), srcs=(areg(0),), imm=1))
        body.append(Instruction(Opcode.BR, srcs=(areg(0),), cond="gt", imm=0, target="body"))
        trace = generate_trace(program)
        branches = [d for d in trace if d.is_branch]
        assert len(branches) == 4
        assert [b.taken for b in branches] == [True, True, True, False]

    def test_call_and_return(self):
        program = Program("call")
        main = program.add_block("main")
        main.append(Instruction(Opcode.CALL, target="sub"))
        main.append(Instruction(Opcode.LI, dest=sreg(0), imm=1))
        main.append(Instruction(Opcode.RET))
        sub = program.add_block("sub")
        sub.append(Instruction(Opcode.LI, dest=sreg(1), imm=2))
        sub.append(Instruction(Opcode.RET))
        trace = generate_trace(program)
        opcodes = [d.opcode for d in trace]
        # call -> subroutine body -> return to caller -> rest of main -> end
        assert opcodes == [Opcode.CALL, Opcode.LI, Opcode.RET, Opcode.LI, Opcode.RET]
        assert trace[0].is_call
        assert trace[2].is_return and trace[-1].is_return

    def test_compare_instruction(self):
        program = _program([
            Instruction(Opcode.LI, dest=sreg(0), imm=5),
            Instruction(Opcode.CMP, dest=sreg(1), srcs=(sreg(0),), imm=3, cond="gt"),
            Instruction(Opcode.BR, srcs=(sreg(1),), target="entry", cond="eq", imm=0),
        ])
        trace = generate_trace(program)
        assert not trace[-1].taken  # 5 > 3, so s1 == 1, eq-0 comparison fails

    def test_runaway_loop_detected(self):
        program = Program("forever")
        body = program.add_block("body")
        body.append(Instruction(Opcode.LI, dest=areg(0), imm=1))
        body.append(Instruction(Opcode.JMP, target="body"))
        with pytest.raises(TraceError):
            TraceGenerator(max_instructions=500).run(program)


class TestVectorSemantics:
    def test_setvl_clamps_to_hardware_maximum(self):
        program = _program([
            Instruction(Opcode.LI, dest=areg(0), imm=1000),
            Instruction(Opcode.SETVL, srcs=(areg(0),)),
            Instruction(Opcode.VADD, dest=vreg(0), srcs=(vreg(1), vreg(2))),
        ])
        trace = generate_trace(program)
        assert trace[-1].vl == 128

    def test_setvl_immediate_clamp(self):
        program = _program([
            Instruction(Opcode.LI, dest=areg(0), imm=1000),
            Instruction(Opcode.SETVL, srcs=(areg(0),), imm=48),
            Instruction(Opcode.VADD, dest=vreg(0), srcs=(vreg(1), vreg(2))),
        ])
        assert generate_trace(program)[-1].vl == 48

    def test_setvl_uses_remaining_count_when_smaller(self):
        program = _program([
            Instruction(Opcode.LI, dest=areg(0), imm=10),
            Instruction(Opcode.SETVL, srcs=(areg(0),), imm=64),
            Instruction(Opcode.VADD, dest=vreg(0), srcs=(vreg(1), vreg(2))),
        ])
        assert generate_trace(program)[-1].vl == 10

    def test_unit_stride_load_region(self):
        program = _program([
            Instruction(Opcode.LI, dest=areg(0), imm=0x2000),
            Instruction(Opcode.SETVL, imm=16),
            Instruction(Opcode.VLOAD, dest=vreg(0), srcs=(areg(0),)),
        ])
        record = generate_trace(program)[-1]
        assert record.address == 0x2000
        assert record.region_start == 0x2000
        assert record.region_end == 0x2000 + 16 * 8
        assert record.memory_ops == 16

    def test_strided_store_region_uses_vs(self):
        program = _program([
            Instruction(Opcode.LI, dest=areg(0), imm=0x3000),
            Instruction(Opcode.SETVL, imm=8),
            Instruction(Opcode.SETVS, imm=32),
            Instruction(Opcode.VSTORES, srcs=(vreg(1), areg(0))),
        ])
        record = generate_trace(program)[-1]
        assert record.stride == 32
        assert record.region_end == 0x3000 + 7 * 32 + 8

    def test_gather_uses_conservative_region(self):
        program = _program([
            Instruction(Opcode.LI, dest=areg(0), imm=0x4000),
            Instruction(Opcode.SETVL, imm=8),
            Instruction(Opcode.VGATHER, dest=vreg(0), srcs=(areg(0), vreg(1)),
                        region_bytes=4096),
        ])
        record = generate_trace(program)[-1]
        assert record.region_start == 0x4000
        assert record.region_end == 0x4000 + 4096

    def test_overlap_detection(self):
        a = DynInstr(seq=0, opcode=Opcode.VSTORE, pc=0, region_start=100, region_end=200)
        b = DynInstr(seq=1, opcode=Opcode.VLOAD, pc=1, region_start=150, region_end=160)
        c = DynInstr(seq=2, opcode=Opcode.VLOAD, pc=2, region_start=200, region_end=210)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_setvl_without_operands_rejected(self):
        program = _program([Instruction(Opcode.SETVL)])
        with pytest.raises(TraceError):
            generate_trace(program)


class TestTraceStatistics:
    def _compiled_trace(self):
        a = ir.Array("a", 300)
        b = ir.Array("b", 300)
        kernel = ir.Kernel("stats")
        kernel.add(ir.VectorLoop("loop", trip=300,
                                 statements=(ir.VectorAssign(b.ref(), a.ref() * 2.0),)))
        return generate_trace(compile_kernel(kernel).program)

    def test_vector_operation_counting(self):
        stats = compute_trace_statistics(self._compiled_trace())
        assert stats.vector_load_ops == 300
        assert stats.vector_store_ops == 300
        assert stats.vector_operations == 300 * 3  # load, vsmul, store per element
        assert stats.average_vector_length == pytest.approx(100.0)

    def test_vectorization_percent_bounds(self):
        stats = compute_trace_statistics(self._compiled_trace())
        assert 0.0 < stats.vectorization_percent < 100.0

    def test_empty_trace(self):
        stats = compute_trace_statistics(Trace("empty"))
        assert stats.total_instructions == 0
        assert stats.vectorization_percent == 0.0
        assert stats.spill_traffic_fraction == 0.0

    def test_spill_fraction_counts_marked_operations(self):
        trace = Trace("spills")
        trace.append(DynInstr(seq=0, opcode=Opcode.VLOAD, pc=0, vl=10, is_spill=True,
                              region_start=0, region_end=80, address=0))
        trace.append(DynInstr(seq=1, opcode=Opcode.VLOAD, pc=1, vl=10,
                              region_start=0, region_end=80, address=0))
        stats = compute_trace_statistics(trace)
        assert stats.vector_load_spill_ops == 10
        assert stats.spill_traffic_fraction == pytest.approx(0.5)
