"""Tests for the experiment engine: specs, fingerprints, store, parallelism,
serialisation round-trips and the command-line driver."""

import json
import os
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.common.errors import ConfigurationError
from repro.common.params import (
    CommitModel,
    LoadElimination,
    OOOParams,
    ReferenceParams,
    params_from_dict,
    params_to_dict,
)
from repro.common.stats import SimStats
from repro.core.config import ooo_config, reference_config
from repro.core.results import SimulationResult
from repro.core.settings import ExecutionPlan
from repro.core.runner import (
    ExperimentEngine,
    ExperimentPoint,
    ExperimentSpec,
    ResultStore,
    configure_engine,
    set_engine,
)
from repro.core.simulator import run, run_cached


@pytest.fixture(autouse=True)
def _isolated_default_engine():
    """Keep the process-wide default engine pristine across these tests."""
    set_engine(None)
    yield
    set_engine(None)


def _point(regs=16, scale="tiny", workload="trfd"):
    return ExperimentPoint(workload, scale, ooo_config(phys_vregs=regs))


class TestSerialization:
    def test_params_round_trip_ooo(self):
        params = OOOParams(
            num_phys_vregs=32,
            commit_model=CommitModel.LATE,
            load_elimination=LoadElimination.SLE_VLE,
        ).with_memory_latency(70)
        rebuilt = params_from_dict(params_to_dict(params))
        assert rebuilt == params
        assert json.dumps(params_to_dict(params))  # JSON-compatible

    def test_params_round_trip_reference(self):
        params = ReferenceParams().with_memory_latency(20)
        assert params_from_dict(params_to_dict(params)) == params

    def test_params_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            params_from_dict({"kind": "quantum"})

    def test_result_round_trip_preserves_statistics(self):
        result = run("trfd", ooo_config(), scale="tiny")
        rebuilt = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert rebuilt.workload == result.workload
        assert rebuilt.config_name == result.config_name
        assert rebuilt.params == result.params
        assert rebuilt.cycles == result.cycles
        assert rebuilt.stats.state_breakdown() == result.stats.state_breakdown()
        assert rebuilt.stats.memory_port_idle_fraction() == \
            result.stats.memory_port_idle_fraction()
        assert rebuilt.stats.ideal_cycles() == result.stats.ideal_cycles()
        assert rebuilt.stats.traffic.total_ops == result.stats.traffic.total_ops

    def test_stats_round_trip_counters(self):
        stats = SimStats(cycles=100, rename_stall_cycles=7, rob_stall_cycles=3)
        stats.record_unit_busy("FU1", 0, 40)
        rebuilt = SimStats.from_dict(stats.to_dict())
        assert rebuilt.rename_stall_cycles == 7
        assert rebuilt.rob_stall_cycles == 3
        assert rebuilt.unit_busy["FU1"].busy_cycles() == 40


class TestFingerprints:
    def test_identical_points_share_a_fingerprint(self):
        assert _point().fingerprint() == _point().fingerprint()

    def test_fingerprint_distinguishes_every_axis(self):
        base = _point()
        assert base.fingerprint() != _point(regs=32).fingerprint()
        assert base.fingerprint() != _point(scale="small").fingerprint()
        assert base.fingerprint() != _point(workload="bdna").fingerprint()
        late = ExperimentPoint(
            "trfd", "tiny", ooo_config(commit_model=CommitModel.LATE))
        assert base.fingerprint() != late.fingerprint()


class TestResultStore:
    """Default (sharded JSON) backend behaviour through the ResultStore API.

    Both backends are exercised uniformly (including with hypothesis) in
    ``tests/test_store_backends.py``; these tests pin the default layout.
    """

    def test_disk_round_trip(self, tmp_path):
        store = ResultStore(tmp_path, backend="json")
        point = _point()
        result = run("trfd", point.config, scale="tiny")
        store.put(point, result)
        files = list(tmp_path.glob("??/*.json"))
        assert len(files) == 1
        # Entries are sharded into <fingerprint[:2]>/ subdirectories.
        assert files[0].parent.name == point.fingerprint()[:2]
        # A brand-new store (fresh process, in spirit) finds it on disk.
        fresh = ResultStore(tmp_path, backend="json")
        fetched = fresh.get(point)
        assert fetched is not None
        assert fetched.cycles == result.cycles
        assert fresh.disk_hits == 1

    def test_get_returns_independent_copies(self, tmp_path):
        store = ResultStore(tmp_path, backend="json")
        point = _point()
        store.put(point, run("trfd", point.config, scale="tiny"))
        first = store.get(point)
        first.stats.cycles = -1
        second = store.get(point)
        assert second.cycles > 0

    def test_corrupt_disk_entry_is_dropped(self, tmp_path):
        store = ResultStore(tmp_path, backend="json")
        point = _point()
        store.put(point, run("trfd", point.config, scale="tiny"))
        path = list(tmp_path.glob("??/*.json"))[0]
        path.write_text("{not json", encoding="utf-8")
        fresh = ResultStore(tmp_path, backend="json")
        assert fresh.get(point) is None
        assert not path.exists()

    def test_stale_entry_with_invalid_params_is_dropped(self, tmp_path):
        # Valid JSON whose params no longer validate (e.g. written by an
        # older schema) must self-heal too, not crash with a ReproError.
        store = ResultStore(tmp_path, backend="json")
        point = _point()
        store.put(point, run("trfd", point.config, scale="tiny"))
        path = list(tmp_path.glob("??/*.json"))[0]
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["result"]["params"]["num_phys_vregs"] = 4  # out of range
        path.write_text(json.dumps(payload), encoding="utf-8")
        fresh = ResultStore(tmp_path, backend="json")
        assert fresh.get(point) is None
        assert not path.exists()

    def test_clear_memory_keeps_disk(self, tmp_path):
        store = ResultStore(tmp_path, backend="json")
        point = _point()
        store.put(point, run("trfd", point.config, scale="tiny"))
        store.clear_memory()
        assert store.get(point) is not None
        assert store.disk_hits == 1

    def test_put_uses_unique_temp_names(self, tmp_path, monkeypatch):
        # Two workers storing the same point concurrently must never share
        # a temp file (the old path.with_suffix(".tmp") did).
        import repro.core.store as store_mod

        seen = []
        real_replace = os.replace

        def recording_replace(src, dst):
            seen.append(str(src))
            real_replace(src, dst)

        monkeypatch.setattr(store_mod.os, "replace", recording_replace)
        store = ResultStore(tmp_path, backend="json")
        point = _point()
        result = run("trfd", point.config, scale="tiny")
        store.put(point, result)
        store.put(point, result)
        tmp_names = [name for name in seen if name.endswith(".tmp")]
        assert len(tmp_names) == 2
        assert tmp_names[0] != tmp_names[1]
        assert all(f".{os.getpid()}." in name for name in tmp_names)


class TestEngine:
    def test_run_spec_simulates_each_point_once(self):
        engine = ExperimentEngine()
        spec = ExperimentSpec.grid(
            "dup", ["trfd"], [ooo_config(), ooo_config(), reference_config()], "tiny")
        results = engine.run_spec(spec)
        # duplicate configs collapse onto one point
        assert len(results) == 2
        assert engine.simulated == 2
        engine.run_spec(spec)
        assert engine.simulated == 2  # all hits the second time

    def test_engine_results_match_direct_simulation(self):
        engine = ExperimentEngine()
        direct = run("trfd", ooo_config(), scale="tiny")
        via_engine = engine.result("trfd", ooo_config(), scale="tiny")
        assert via_engine.cycles == direct.cycles
        assert via_engine.stats.to_dict() == direct.stats.to_dict()

    def test_parallel_execution_matches_serial(self, tmp_path):
        spec = ExperimentSpec.grid(
            "par", ["trfd", "bdna"],
            [reference_config(), ooo_config(), ooo_config(phys_vregs=32)], "tiny")
        serial = ExperimentEngine(plan=ExecutionPlan(jobs=1)).run_spec(spec)
        parallel = ExperimentEngine(
            ResultStore(tmp_path), plan=ExecutionPlan(jobs=2)).run_spec(spec)
        assert set(serial) == set(parallel)
        for point in serial:
            assert serial[point].cycles == parallel[point].cycles
            assert serial[point].stats.to_dict() == parallel[point].stats.to_dict()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ExperimentEngine(jobs=0)

    def test_warm_disk_cache_skips_all_simulation(self, tmp_path):
        spec = ExperimentSpec.grid(
            "warm", ["trfd"], [reference_config(), ooo_config()], "tiny")
        cold = ExperimentEngine(ResultStore(tmp_path))
        cold.run_spec(spec)
        assert cold.simulated == 2
        warm = ExperimentEngine(ResultStore(tmp_path))
        warm.run_spec(spec)
        assert warm.simulated == 0
        assert warm.disk_hits == 2

    def test_summary_mentions_counters(self):
        engine = ExperimentEngine()
        engine.result("trfd", ooo_config(), scale="tiny")
        assert "1 simulated" in engine.summary()


class TestRunCachedIntegration:
    def test_run_cached_uses_configured_engine(self, tmp_path):
        engine = configure_engine(cache_dir=tmp_path, jobs=1, store="json")
        run_cached("trfd", ooo_config(), scale="tiny")
        assert engine.simulated == 1
        assert list(tmp_path.glob("??/*.json"))
        # Same point again: served from the store, no new simulation.
        run_cached("trfd", ooo_config(), scale="tiny")
        assert engine.simulated == 1


class TestCLI:
    def test_list_command(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure5" in out and "trfd" in out

    def test_run_all_cold_then_warm(self, tmp_path, capsys):
        from repro.cli import main

        args = ["run-all", "--scale", "small", "--cache-dir", str(tmp_path),
                "--exhibits", "table1,figure6", "--programs", "trfd"]
        assert main(args) == 0
        cold_out = capsys.readouterr().out
        assert "Figure 6" in cold_out and "Table 1" in cold_out
        assert "0 simulated" not in cold_out
        # A second invocation (fresh engine, same cache dir) simulates nothing.
        assert main(args) == 0
        warm_out = capsys.readouterr().out
        assert "0 simulated" in warm_out

    def test_run_all_rejects_unknown_exhibit(self, capsys):
        from repro.cli import main

        assert main(["run-all", "--exhibits", "figure99"]) == 2
        assert "unknown exhibit" in capsys.readouterr().err

    def test_run_all_rejects_unknown_program(self, capsys):
        from repro.cli import main

        assert main(["run-all", "--programs", "doom"]) == 2
        assert "unknown program" in capsys.readouterr().err

    def test_run_all_rejects_empty_selections(self, capsys):
        from repro.cli import main

        assert main(["run-all", "--exhibits", ""]) == 2
        assert "selected nothing" in capsys.readouterr().err
        assert main(["run-all", "--programs", ","]) == 2
        assert "selected nothing" in capsys.readouterr().err

    def test_broken_pool_falls_back_to_serial(self, monkeypatch):
        import repro.core.runner as runner_mod

        def explode(self, points):
            raise BrokenProcessPool("workers died")

        monkeypatch.setattr(ExperimentEngine, "_execute_parallel", explode)
        engine = ExperimentEngine(plan=ExecutionPlan(jobs=4))
        spec = ExperimentSpec.grid(
            "fallback", ["trfd"], [ooo_config(), reference_config()], "tiny")
        results = engine.run_spec(spec)
        assert len(results) == 2
        assert all(r.cycles > 0 for r in results.values())
