"""Unit tests for the kernel IR."""

import pytest

from repro.common.errors import CompilationError
from repro.compiler import ir


class TestArray:
    def test_bytes(self):
        assert ir.Array("a", 10).bytes == 80

    def test_positive_size_required(self):
        with pytest.raises(CompilationError):
            ir.Array("bad", 0)

    def test_unique_uids(self):
        assert ir.Array("a", 4).uid != ir.Array("a", 4).uid

    def test_ref_and_gather_helpers(self):
        a = ir.Array("a", 16)
        idx = ir.Array("idx", 16)
        ref = a.ref(offset=2, stride=3)
        assert ref.offset == 2 and ref.stride == 3
        gather = a.gather(idx.ref())
        assert gather.array is a and gather.index.array is idx


class TestExpressions:
    def test_operator_overloads_build_binops(self):
        a = ir.Array("a", 8)
        expr = a.ref() * 2.0 + 1.0
        assert isinstance(expr, ir.BinOp) and expr.op == "+"
        assert isinstance(expr.lhs, ir.BinOp) and expr.lhs.op == "*"
        assert isinstance(expr.rhs, ir.Const)

    def test_reverse_operators(self):
        a = ir.Array("a", 8)
        expr = 2.0 - a.ref()
        assert isinstance(expr, ir.BinOp) and expr.op == "-"
        assert isinstance(expr.lhs, ir.Const)

    def test_division(self):
        a = ir.Array("a", 8)
        assert (a.ref() / 4).op == "/"

    def test_invalid_binop_operator(self):
        a = ir.Array("a", 8)
        with pytest.raises(CompilationError):
            ir.BinOp("%", a.ref(), a.ref())

    def test_unary_helpers(self):
        a = ir.Array("a", 8)
        assert ir.sqrt(a.ref()).op == "sqrt"
        assert ir.vmin(a.ref(), 1.0).op == "min"
        assert ir.vmax(a.ref(), 1.0).op == "max"

    def test_invalid_unary(self):
        with pytest.raises(CompilationError):
            ir.UnaryOp("exp", ir.Const(1.0))

    def test_compare_and_where(self):
        a = ir.Array("a", 8)
        cond = ir.compare("gt", a.ref(), 0.0)
        select = ir.where(cond, a.ref(), 0.0)
        assert isinstance(select, ir.Select)
        assert select.cond.cond == "gt"

    def test_invalid_compare(self):
        with pytest.raises(CompilationError):
            ir.compare("gtx", ir.Const(1.0), ir.Const(2.0))

    def test_as_expr_rejects_strings(self):
        with pytest.raises(CompilationError):
            ir.as_expr("not an expression")

    def test_zero_stride_rejected(self):
        a = ir.Array("a", 8)
        with pytest.raises(CompilationError):
            a.ref(stride=0)


class TestKernelItems:
    def test_vector_loop_validation(self):
        a = ir.Array("a", 8)
        stmt = ir.VectorAssign(a.ref(), a.ref() + 1.0)
        with pytest.raises(CompilationError):
            ir.VectorLoop("bad", trip=0, statements=(stmt,))
        with pytest.raises(CompilationError):
            ir.VectorLoop("bad", trip=8, statements=())
        with pytest.raises(CompilationError):
            ir.VectorLoop("bad", trip=8, statements=(stmt,), max_vl=200)

    def test_scalar_work_validation(self):
        with pytest.raises(CompilationError):
            ir.ScalarWork("bad", alu_ops=-1)
        with pytest.raises(CompilationError):
            ir.ScalarWork("bad", footprint=0)

    def test_loop_validation(self):
        a = ir.Array("a", 8)
        loop = ir.VectorLoop("v", trip=8, statements=(ir.VectorAssign(a.ref(), a.ref()),))
        with pytest.raises(CompilationError):
            ir.Loop("bad", count=0, body=(loop,))
        with pytest.raises(CompilationError):
            ir.Loop("bad", count=3, body=())

    def test_kernel_collects_arrays(self):
        a = ir.Array("a", 8)
        b = ir.Array("b", 8)
        idx = ir.Array("idx", 8)
        kernel = ir.Kernel("k")
        kernel.add(
            ir.VectorLoop(
                "loop", trip=8,
                statements=(ir.VectorAssign(a.ref(), b.gather(idx.ref()) + b.ref()),),
            )
        )
        names = {array.name for array in kernel.arrays()}
        assert names == {"a", "b", "idx"}

    def test_kernel_collects_arrays_through_nesting(self):
        a = ir.Array("a", 8)
        inner = ir.VectorLoop("inner", trip=8,
                              statements=(ir.VectorAssign(a.ref(), a.ref() * 2.0),))
        routine = ir.Routine("r", (inner,))
        kernel = ir.Kernel("k")
        kernel.add(ir.Loop("outer", 2, (ir.CallRoutine(routine),)))
        assert [array.name for array in kernel.arrays()] == ["a"]

    def test_select_and_compare_arrays_collected(self):
        a = ir.Array("a", 8)
        b = ir.Array("b", 8)
        kernel = ir.Kernel("k")
        kernel.add(
            ir.VectorLoop(
                "loop", trip=8,
                statements=(
                    ir.VectorAssign(
                        a.ref(),
                        ir.where(ir.compare("lt", b.ref(), 1.0), b.ref(), 0.0),
                    ),
                ),
            )
        )
        assert {array.name for array in kernel.arrays()} == {"a", "b"}

    def test_reduce_statement(self):
        a = ir.Array("a", 8)
        loop = ir.VectorLoop("loop", trip=8, statements=(ir.Reduce(a.ref(), "sum"),))
        assert isinstance(loop.statements[0], ir.Reduce)
