"""Unit tests for machine-parameter dataclasses."""

import dataclasses

import pytest

from repro.common.errors import ConfigurationError
from repro.common.params import (
    MAX_VECTOR_LENGTH,
    NUM_ARCH_VREGS,
    CommitModel,
    FunctionalUnitLatencies,
    LoadElimination,
    MemoryParams,
    OOOParams,
    ReferenceParams,
)


class TestFunctionalUnitLatencies:
    def test_defaults_are_positive(self):
        lat = FunctionalUnitLatencies()
        for field in dataclasses.fields(lat):
            assert getattr(lat, field.name) > 0, field.name

    def test_divide_slower_than_add(self):
        lat = FunctionalUnitLatencies()
        assert lat.div > lat.add
        assert lat.sqrt > lat.logical

    @pytest.mark.parametrize("op_class", ["logical", "add", "mul", "div", "sqrt"])
    def test_vector_op_latency_lookup(self, op_class):
        lat = FunctionalUnitLatencies()
        assert lat.vector_op_latency(op_class) == getattr(lat, op_class)

    def test_vector_op_latency_unknown_class(self):
        with pytest.raises(ConfigurationError):
            FunctionalUnitLatencies().vector_op_latency("bogus")

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FunctionalUnitLatencies().add = 7


class TestMemoryParams:
    def test_default_latency_is_50(self):
        assert MemoryParams().latency == 50

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryParams(latency=-1)

    def test_zero_addresses_per_cycle_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryParams(addresses_per_cycle=0)


class TestReferenceParams:
    def test_defaults_match_paper(self):
        params = ReferenceParams()
        assert params.num_vregs == NUM_ARCH_VREGS == 8
        assert params.vregs_per_bank == 2
        assert params.bank_read_ports == 2
        assert params.bank_write_ports == 1
        assert params.chain_fu_to_fu and params.chain_fu_to_store
        assert not params.chain_load_to_fu

    def test_with_memory_latency_returns_copy(self):
        params = ReferenceParams()
        other = params.with_memory_latency(100)
        assert other.memory.latency == 100
        assert params.memory.latency == 50

    def test_max_vector_length(self):
        assert MAX_VECTOR_LENGTH == 128


class TestOOOParams:
    def test_defaults_match_paper(self):
        params = OOOParams()
        assert params.num_phys_aregs == 64
        assert params.num_phys_sregs == 64
        assert params.num_phys_maskregs == 8
        assert params.rob_entries == 64
        assert params.queue_slots == 16
        assert params.commit_width == 4
        assert params.fetch_width == 1
        assert params.btb_entries == 64
        assert params.ras_depth == 8
        assert params.commit_model is CommitModel.EARLY
        assert params.load_elimination is LoadElimination.NONE

    def test_too_few_physical_vregs_rejected(self):
        with pytest.raises(ConfigurationError):
            OOOParams(num_phys_vregs=8)

    @pytest.mark.parametrize("count", [9, 12, 16, 32, 64])
    def test_paper_register_sweep_accepted(self, count):
        assert OOOParams(num_phys_vregs=count).num_phys_vregs == count

    def test_with_phys_vregs(self):
        params = OOOParams(num_phys_vregs=16)
        assert params.with_phys_vregs(32).num_phys_vregs == 32
        assert params.num_phys_vregs == 16

    def test_with_memory_latency(self):
        assert OOOParams().with_memory_latency(1).memory.latency == 1

    def test_invalid_rob(self):
        with pytest.raises(ConfigurationError):
            OOOParams(rob_entries=0)

    def test_invalid_queue_slots(self):
        with pytest.raises(ConfigurationError):
            OOOParams(queue_slots=0)

    def test_invalid_commit_width(self):
        with pytest.raises(ConfigurationError):
            OOOParams(commit_width=0)

    def test_too_few_scalar_registers_rejected(self):
        with pytest.raises(ConfigurationError):
            OOOParams(num_phys_aregs=4)
        with pytest.raises(ConfigurationError):
            OOOParams(num_phys_sregs=4)

    def test_commit_model_values(self):
        assert CommitModel("early") is CommitModel.EARLY
        assert CommitModel("late") is CommitModel.LATE

    def test_load_elimination_values(self):
        assert LoadElimination("sle") is LoadElimination.SLE
        assert LoadElimination("sle+vle") is LoadElimination.SLE_VLE
