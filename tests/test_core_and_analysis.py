"""Tests for the public API layer: configurations, run(), experiments, reports."""

import pytest

from repro.analysis import (
    format_table,
    report_latency_tolerance,
    report_port_idle,
    report_simple_curves,
    report_speedup_curves,
    report_state_breakdown,
    report_table2,
    report_table3,
    report_traffic_reduction,
)
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.params import CommitModel, LoadElimination, OOOParams, ReferenceParams
from repro.trace.records import Trace
from repro.core import (
    MachineConfig,
    get_config,
    ooo_config,
    reference_config,
    run,
    run_cached,
    simulate_trace,
    standard_configs,
)
from repro.core.experiments import (
    figure3_reference_state_breakdown,
    figure4_reference_port_idle,
    figure5_speedup_vs_registers,
    figure6_port_idle_comparison,
    figure7_state_breakdown_comparison,
    figure8_latency_tolerance,
    figure9_commit_models,
    figure11_sle_speedup,
    figure12_sle_vle_speedup,
    figure13_traffic_reduction,
    table1_functional_unit_latencies,
    table2_program_statistics,
    table3_spill_statistics,
)
from repro.workloads import get_workload

SMALL = ("trfd",)  # one cheap program keeps the experiment tests fast


class TestConfigs:
    def test_reference_config(self):
        config = reference_config(latency=70)
        assert config.is_reference
        assert isinstance(config.params, ReferenceParams)
        assert config.params.memory.latency == 70

    def test_ooo_config_naming(self):
        assert ooo_config().name == "ooo"
        assert ooo_config(commit_model=CommitModel.LATE).name == "ooo-late"
        assert ooo_config(commit_model=CommitModel.LATE,
                          load_elimination=LoadElimination.SLE).name == "ooo-late-sle"
        assert ooo_config(commit_model=CommitModel.LATE,
                          load_elimination=LoadElimination.SLE_VLE).name == "ooo-late-sle-vle"

    def test_standard_configs(self):
        configs = standard_configs()
        assert set(configs) == {"reference", "inorder", "ooo", "ooo-late",
                                "ooo-late-sle", "ooo-late-sle-vle"}

    def test_get_config(self):
        assert get_config("ooo").name == "ooo"
        with pytest.raises(ConfigurationError):
            get_config("warp-drive")

    def test_with_helpers(self):
        config = ooo_config(phys_vregs=16)
        assert config.with_phys_vregs(64).params.num_phys_vregs == 64
        assert config.with_memory_latency(5).params.memory.latency == 5
        assert config.with_queue_slots(128).params.queue_slots == 128

    def test_reference_has_no_vreg_knob(self):
        with pytest.raises(ConfigurationError):
            reference_config().with_phys_vregs(32)
        with pytest.raises(ConfigurationError):
            reference_config().with_queue_slots(32)


class TestRunAPI:
    def test_run_by_name_and_by_object(self):
        by_name = run("trfd", ooo_config(), scale="tiny")
        by_object = run(get_workload("trfd", "tiny"), ooo_config())
        assert by_name.cycles == by_object.cycles
        assert by_name.workload == "trfd"
        assert by_name.config_name == "ooo"

    def test_simulate_trace_matches_run(self):
        workload = get_workload("trfd", "tiny")
        direct = simulate_trace(workload.trace(), reference_config())
        wrapped = run(workload, reference_config())
        assert direct.cycles == wrapped.cycles

    def test_empty_trace_rejected_on_both_simulator_paths(self):
        # Every path used to disagree here: simulate_ooo raised while the
        # reference path returned cycles=0 and later exploded in speedup().
        # The validation now lives in simulate_trace, once for both machines.
        for config in (reference_config(), ooo_config()):
            with pytest.raises(SimulationError):
                simulate_trace(Trace("empty"), config)

    def test_run_cached_returns_equal_but_independent_results(self):
        first = run_cached("trfd", ooo_config(), scale="tiny")
        second = run_cached("trfd", ooo_config(), scale="tiny")
        # Same simulation outcome, but never the same mutable object: the
        # store hands out defensive copies so callers cannot corrupt it.
        assert first is not second
        assert first.cycles == second.cycles
        assert first.stats.to_dict() == second.stats.to_dict()

    def test_run_cached_is_immune_to_caller_mutation(self):
        first = run_cached("trfd", ooo_config(), scale="tiny")
        pristine_cycles = first.cycles
        pristine_busy = first.stats.unit_busy["FU1"].busy_cycles()
        first.stats.cycles = 1
        first.stats.unit_busy["FU1"].add(0, 10_000_000)
        first.stats.traffic.vector_load_ops = -5
        refetched = run_cached("trfd", ooo_config(), scale="tiny")
        assert refetched.cycles == pristine_cycles
        assert refetched.stats.unit_busy["FU1"].busy_cycles() == pristine_busy
        assert refetched.stats.traffic.vector_load_ops >= 0

    def test_result_helpers(self):
        workload = get_workload("trfd", "tiny")
        baseline = run(workload, reference_config())
        improved = run(workload, ooo_config(phys_vregs=16))
        assert improved.speedup_over(baseline) > 1.0
        assert improved.traffic_reduction_over(baseline) == pytest.approx(1.0, abs=0.05)
        assert "trfd" in str(improved)
        assert improved.memory_latency == 50


class TestExperiments:
    def test_table1(self):
        latencies = table1_functional_unit_latencies()
        assert latencies["div"] == 9 and latencies["add"] == 4

    def test_table2_and_3(self):
        stats = table2_program_statistics(programs=SMALL, scale="tiny")
        assert set(stats) == set(SMALL)
        spills = table3_spill_statistics(programs=SMALL, scale="tiny")
        assert spills["trfd"]["vector_load_ops"] > 0

    def test_figure3(self):
        data = figure3_reference_state_breakdown(programs=SMALL, latencies=(1, 50),
                                                 scale="tiny")
        assert set(data["trfd"]) == {1, 50}
        for breakdown in data["trfd"].values():
            assert sum(breakdown.values()) > 0

    def test_figure4(self):
        data = figure4_reference_port_idle(programs=SMALL, latencies=(1, 70), scale="tiny")
        assert 0.0 <= data["trfd"][70] <= 1.0

    def test_figure5(self):
        data = figure5_speedup_vs_registers(programs=SMALL, register_counts=(9, 16),
                                            scale="tiny")
        curves = data["trfd"]["curves"]
        assert curves["OOOVA-16"][16] >= curves["OOOVA-16"][9] - 0.01
        assert data["trfd"]["ideal"] > 1.0

    def test_figure6_and_7(self):
        idle = figure6_port_idle_comparison(programs=SMALL, scale="tiny")
        assert idle["trfd"]["OOOVA"] <= idle["trfd"]["REF"]
        states = figure7_state_breakdown_comparison(programs=SMALL, scale="tiny")
        assert set(states["trfd"]) == {"REF", "OOOVA"}

    def test_figure8(self):
        data = figure8_latency_tolerance(programs=SMALL, latencies=(1, 100), scale="tiny")
        assert data["trfd"]["REF"][100] > data["trfd"]["REF"][1]
        assert data["trfd"]["IDEAL"][1] == data["trfd"]["IDEAL"][100]

    def test_figure9(self):
        data = figure9_commit_models(programs=SMALL, register_counts=(16,), scale="tiny")
        assert data["trfd"]["late"][16] <= data["trfd"]["early"][16] + 0.01

    def test_figures_11_12_13(self):
        sle = figure11_sle_speedup(programs=SMALL, register_counts=(32,), scale="tiny")
        vle = figure12_sle_vle_speedup(programs=SMALL, register_counts=(32,), scale="tiny")
        assert sle["trfd"][32] > 0.9
        assert vle["trfd"][32] >= sle["trfd"][32] - 0.05
        traffic = figure13_traffic_reduction(programs=SMALL, scale="tiny")
        assert traffic["trfd"]["SLE+VLE"] >= traffic["trfd"]["SLE"] - 0.01 >= 0.98


class TestReports:
    def test_format_table_alignment(self):
        table = format_table(["a", "b"], [["x", 1.23456], ["yy", 2]])
        assert "1.23" in table and "yy" in table

    def test_report_helpers_produce_text(self):
        stats = table2_program_statistics(programs=SMALL, scale="tiny")
        assert "trfd" in report_table2(stats)
        assert "trfd" in report_table3(table3_spill_statistics(programs=SMALL, scale="tiny"))
        idle = figure4_reference_port_idle(programs=SMALL, latencies=(1,), scale="tiny")
        assert "%" in report_port_idle(idle, "Figure 4")
        speedups = figure5_speedup_vs_registers(programs=SMALL, register_counts=(9, 16),
                                                scale="tiny")
        assert "OOOVA-16" in report_speedup_curves(speedups, (9, 16))
        states = figure3_reference_state_breakdown(programs=SMALL, latencies=(1,),
                                                   scale="tiny")
        assert "trfd" in report_state_breakdown(states)
        latencies = figure8_latency_tolerance(programs=SMALL, latencies=(1, 100),
                                              scale="tiny")
        assert "lat=100" in report_latency_tolerance(latencies, (1, 100))
        sle = figure11_sle_speedup(programs=SMALL, register_counts=(32,), scale="tiny")
        assert "trfd" in report_simple_curves(sle, (32,), "SLE")
        traffic = figure13_traffic_reduction(programs=SMALL, scale="tiny")
        assert "SLE+VLE" in report_traffic_reduction(traffic)
