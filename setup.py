"""Setup shim.

Package metadata lives in ``pyproject.toml``; this file keeps
``pip install -e .`` working on minimal offline environments whose
setuptools cannot build PEP 660 editable wheels (no ``wheel`` package), and
declares the ``repro`` console entry point for such installs.
"""

from setuptools import find_packages, setup

setup(
    name="repro-ooova",
    version="0.3.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
            "repro-bench = repro.bench:main",
        ],
    },
)
