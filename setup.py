"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists so
that ``pip install -e .`` also works on minimal offline environments whose
setuptools cannot build PEP 660 editable wheels (no ``wheel`` package).
"""

from setuptools import setup

setup()
