#!/usr/bin/env python3
"""Bring your own kernel: write IR, compile it, trace it, simulate it.

The ten built-in workloads are re-creations of the paper's benchmark suite,
but the same pipeline works for any kernel written against the compiler IR.
This example builds a small complex-arithmetic kernel (an FIR-like filter),
compiles it down to the vector ISA, prints the generated assembly, and runs
it on both machines.

Run with::

    python examples/custom_kernel.py
"""

from repro.api import Session
from repro.compiler import ir
from repro.compiler.pipeline import compile_kernel
from repro.core import ooo_config, reference_config
from repro.trace import compute_trace_statistics, generate_trace


def build_kernel() -> ir.Kernel:
    n = 768
    signal = ir.Array("signal", n)
    coeff = ir.Array("coeff", n)
    output = ir.Array("output", n)
    energy_taps = ir.Array("energy_taps", n)

    gain = ir.ScalarOperand("gain", 0.8)

    fir = ir.VectorLoop(
        "fir_filter",
        trip=n - 3,
        statements=(
            ir.VectorAssign(
                output.ref(),
                signal.ref() * coeff.ref()
                + signal.ref(offset=1) * coeff.ref(offset=1)
                + signal.ref(offset=2) * coeff.ref(offset=2)
                + signal.ref(offset=3) * coeff.ref(offset=3),
            ),
            ir.VectorAssign(energy_taps.ref(), output.ref() * output.ref() * gain),
            ir.Reduce(energy_taps.ref(), "total_energy"),
        ),
    )

    kernel = ir.Kernel("fir_demo")
    kernel.add(ir.Loop("frames", 3, (fir, ir.ScalarWork("frame_setup", alu_ops=6, loads=2))))
    return kernel


def main() -> int:
    result = compile_kernel(build_kernel())
    print(f"Compiled {result.static_instructions} static instructions; "
          f"vector spill stores/loads: {result.allocation.vector_spill_stores}/"
          f"{result.allocation.vector_spill_loads}")
    print()
    print("First basic blocks of the generated code:")
    for block in result.program.blocks[:3]:
        print(block)
    print()

    trace = generate_trace(result.program)
    stats = compute_trace_statistics(trace)
    print(f"Dynamic instructions: {stats.total_instructions}, "
          f"vectorisation {stats.vectorization_percent:.1f}%, "
          f"average VL {stats.average_vector_length:.1f}")
    print()

    with Session() as session:
        reference = session.simulate_trace(trace, reference_config())
        ooo = session.simulate_trace(trace, ooo_config(phys_vregs=16))
    print(f"Reference machine : {reference.cycles} cycles")
    print(f"OOOVA (16 regs)   : {ooo.cycles} cycles  "
          f"(speedup {ooo.speedup_over(reference):.2f})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
