#!/usr/bin/env python3
"""Bring your own *machine*: register a third-party timing model.

The repository ships three machine models (``reference``, ``inorder``,
``ooo``), but the machine-model registry is open: any object satisfying
the :class:`repro.api.Machine` protocol — ``run_slice`` / ``finalise`` /
``snapshot`` / ``restore`` plus a ``params`` attribute — can be registered
under a name and then participates in single-point simulation, sweep
grids and chunked execution.  The registry's conservative default
chunking hooks guarantee correctness for models like this one that
declare none: every chunk simply takes the exact-replay fallback.

This example builds the simplest interesting model — a single-issue
scoreboard machine that charges one cycle per scalar operation, one cycle
per vector *element* and a flat memory penalty per memory instruction —
registers it through :mod:`repro.api` only, and runs it against the
built-in machines, monolithically and chunked.

Before shipping a machine of your own, run the static contract analyzer
over it — ``repro check path/to/your_machine.py`` (or
``python -m repro.checks``) — it flags snapshot/restore/reset state
drift, asymmetric snapshot keys, impure digests and nondeterministic
iteration *before* they surface as a chunked-vs-monolithic digest
mismatch.  This file is checked in CI the same way.

Run with::

    python examples/custom_machine.py [program]
"""

import sys
from dataclasses import dataclass

from repro.api import MachineConfig, MachineModel, Session, register_machine


@dataclass(frozen=True)
class ScoreboardParams:
    """Knobs of the toy machine (a frozen dataclass, like the built-ins)."""

    #: flat cycles charged per memory instruction (vector or scalar)
    memory_penalty: int = 20
    #: cycles per vector element processed
    cycles_per_element: int = 1


class ScoreboardMachine:
    """A single-issue accumulator: the minimal ``Machine`` implementation.

    No renaming, no overlap — every instruction costs its latency in
    full.  The three state fields round-trip through ``snapshot`` /
    ``restore``, which is all the chunked simulator's exact-replay
    fallback needs.
    """

    def __init__(self, params, trace):
        self.params = params
        self.trace = trace
        self.cycles = 0
        self.instructions = 0
        self.vector_operations = 0

    def run_slice(self, instructions):
        for dyn in instructions:
            self.instructions += 1
            if dyn.is_vector:
                self.vector_operations += dyn.vl
                self.cycles += max(dyn.vl, 1) * self.params.cycles_per_element
            else:
                self.cycles += 1
            if dyn.is_memory:
                self.cycles += self.params.memory_penalty

    def finalise(self):
        from repro.common.stats import SimStats

        stats = SimStats()
        stats.cycles = self.cycles
        stats.scalar_instructions = self.instructions
        stats.vector_operations = self.vector_operations
        return stats

    def snapshot(self):
        return {
            "kind": "scoreboard",
            "cycles": self.cycles,
            "instructions": self.instructions,
            "vector_operations": self.vector_operations,
        }

    def restore(self, state):
        self.cycles = int(state["cycles"])
        self.instructions = int(state["instructions"])
        self.vector_operations = int(state["vector_operations"])


register_machine(MachineModel(
    name="scoreboard",
    params_type=ScoreboardParams,
    factory=lambda params, trace: ScoreboardMachine(params, trace),
    snapshot_kind="scoreboard",
))


def main() -> int:
    program = sys.argv[1] if len(sys.argv) > 1 else "trfd"
    config = MachineConfig("scoreboard", ScoreboardParams())

    with Session() as session:
        mono, _ = session.simulate(program, config)
        # chunked execution works immediately: the conservative default
        # hooks route every chunk through the exact-replay fallback
        chunked, report = session.simulate(program, config, chunk_size=200)
        reference, _ = session.simulate(program, "reference")
        ooo, _ = session.simulate(program, "ooo")

    assert mono.stats.to_dict() == chunked.stats.to_dict(), \
        "chunked run diverged from monolithic"
    print(f"Program: {program}")
    print(f"  scoreboard (toy) : {mono.cycles} cycles")
    print(f"  chunked          : {chunked.cycles} cycles "
          f"({report.chunks} chunks, {report.replayed} replayed — "
          "bit-identical by exact replay)")
    print(f"  reference        : {reference.cycles} cycles")
    print(f"  ooo              : {ooo.cycles} cycles")
    print("A registered machine is a first-class citizen: grids, the CLI's "
          "--machine flag and chunked execution all dispatch through the "
          "registry.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
