#!/usr/bin/env python3
"""Quickstart: compare the in-order reference machine with the OOOVA.

This reproduces, for a single program, the paper's headline claim: adding
register renaming and out-of-order issue to a traditional vector processor
gives a substantial speedup (1.24-1.72 at 16 physical vector registers) and
keeps the memory port busy a much larger fraction of the time.

Everything goes through the public :mod:`repro.api` façade: one
:class:`~repro.api.Session` owns the caches and engine, and a
:class:`~repro.api.RunRequest` declares the whole sweep as data.

Run it with::

    python examples/quickstart.py [program]

where ``program`` is one of the ten benchmark names (default: trfd).
"""

import sys

from repro.api import RunRequest, Session
from repro.core import ooo_config
from repro.workloads import WORKLOAD_NAMES, get_workload

REGISTER_COUNTS = (9, 16, 32, 64)


def main() -> int:
    program = sys.argv[1] if len(sys.argv) > 1 else "trfd"
    if program not in WORKLOAD_NAMES:
        print(f"unknown program {program!r}; choose from: {', '.join(WORKLOAD_NAMES)}")
        return 1

    workload = get_workload(program)
    print(f"Program: {program} ({workload.characteristics.description})")
    stats = workload.statistics()
    print(f"  dynamic instructions : {stats.total_instructions}")
    print(f"  vectorisation        : {stats.vectorization_percent:.1f}%")
    print(f"  average vector length: {stats.average_vector_length:.1f}")
    print()

    ooo_configs = tuple(ooo_config(phys_vregs=regs) for regs in REGISTER_COUNTS)
    with Session() as session:
        grid = session.run(RunRequest(
            workloads=(program,),
            configs=("reference",) + ooo_configs,
        ))

    reference = grid.get(program, "reference")
    print(f"Reference (in-order C3400-like) machine: {reference.cycles} cycles, "
          f"memory port idle {100 * reference.stats.memory_port_idle_fraction():.1f}% of the time")

    for regs, config in zip(REGISTER_COUNTS, ooo_configs, strict=True):
        ooo = grid.get(program, config)
        print(f"OOOVA with {regs:>2} physical vector registers: {ooo.cycles:>9} cycles "
              f"(speedup {grid.speedup(program, config):.2f}, "
              f"port idle {100 * ooo.stats.memory_port_idle_fraction():.1f}%)")

    return 0


if __name__ == "__main__":
    raise SystemExit(main())
