#!/usr/bin/env python3
"""Dynamic load elimination study (the paper's Figures 11, 12 and 13).

Starting from the precise-trap (late commit) OOOVA, this example enables
scalar load elimination (SLE) and then scalar+vector load elimination
(SLE+VLE) and reports the speedups and the reduction in memory traffic.
The spill-bound programs (trfd, dyfesm, bdna) benefit the most, exactly as
in the paper.

The whole sweep is declared as one :class:`repro.api.RunRequest` and
resolved through a :class:`repro.api.Session`, so every result is
addressable as data.

Run with::

    python examples/load_elimination.py [program ...]
"""

import sys

from repro.analysis import format_table
from repro.api import RunRequest, Session
from repro.common.params import CommitModel, LoadElimination
from repro.core import ooo_config
from repro.workloads import WORKLOAD_NAMES

DEFAULT_PROGRAMS = ("swm256", "bdna", "trfd", "dyfesm")


def main() -> int:
    requested = tuple(sys.argv[1:]) or DEFAULT_PROGRAMS
    programs = []
    for program in requested:
        if program not in WORKLOAD_NAMES:
            print(f"skipping unknown program {program!r}")
            continue
        programs.append(program)
    if not programs:
        return 1

    baseline_cfg = ooo_config(phys_vregs=32, commit_model=CommitModel.LATE)
    sle_cfg = ooo_config(phys_vregs=32, commit_model=CommitModel.LATE,
                         load_elimination=LoadElimination.SLE)
    vle_cfg = ooo_config(phys_vregs=32, commit_model=CommitModel.LATE,
                         load_elimination=LoadElimination.SLE_VLE)
    with Session() as session:
        grid = session.run(RunRequest(
            workloads=tuple(programs),
            configs=(baseline_cfg, sle_cfg, vle_cfg),
        ))

    rows = []
    for program in programs:
        baseline = grid.get(program, baseline_cfg)
        sle = grid.get(program, sle_cfg)
        vle = grid.get(program, vle_cfg)
        rows.append([
            program,
            baseline.cycles,
            sle.speedup_over(baseline),
            vle.speedup_over(baseline),
            vle.traffic_reduction_over(baseline),
            vle.stats.loads_eliminated,
            vle.stats.scalar_loads_eliminated,
        ])
    print(format_table(
        ["program", "baseline cycles", "SLE speedup", "SLE+VLE speedup",
         "traffic reduction", "vloads eliminated", "scalar loads eliminated"],
        rows,
        title="Dynamic load elimination at 32 physical vector registers (late commit)",
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
