#!/usr/bin/env python3
"""Dynamic load elimination study (the paper's Figures 11, 12 and 13).

Starting from the precise-trap (late commit) OOOVA, this example enables
scalar load elimination (SLE) and then scalar+vector load elimination
(SLE+VLE) and reports the speedups and the reduction in memory traffic.
The spill-bound programs (trfd, dyfesm, bdna) benefit the most, exactly as
in the paper.

Run with::

    python examples/load_elimination.py [program ...]
"""

import sys

from repro.analysis import format_table
from repro.common.params import CommitModel, LoadElimination
from repro.core import ooo_config, run
from repro.workloads import WORKLOAD_NAMES, get_workload

DEFAULT_PROGRAMS = ("swm256", "bdna", "trfd", "dyfesm")


def main() -> int:
    programs = tuple(sys.argv[1:]) or DEFAULT_PROGRAMS
    rows = []
    for program in programs:
        if program not in WORKLOAD_NAMES:
            print(f"skipping unknown program {program!r}")
            continue
        workload = get_workload(program)
        baseline = run(workload, ooo_config(phys_vregs=32, commit_model=CommitModel.LATE))
        sle = run(workload, ooo_config(phys_vregs=32, commit_model=CommitModel.LATE,
                                       load_elimination=LoadElimination.SLE))
        vle = run(workload, ooo_config(phys_vregs=32, commit_model=CommitModel.LATE,
                                       load_elimination=LoadElimination.SLE_VLE))
        rows.append([
            program,
            baseline.cycles,
            sle.speedup_over(baseline),
            vle.speedup_over(baseline),
            vle.traffic_reduction_over(baseline),
            vle.stats.loads_eliminated,
            vle.stats.scalar_loads_eliminated,
        ])
    print(format_table(
        ["program", "baseline cycles", "SLE speedup", "SLE+VLE speedup",
         "traffic reduction", "vloads eliminated", "scalar loads eliminated"],
        rows,
        title="Dynamic load elimination at 32 physical vector registers (late commit)",
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
