#!/usr/bin/env python3
"""Fleet execution: a two-worker local fleet, end to end.

One :class:`~repro.api.Session` with ``fleet=2`` dispatches a workload ×
configuration grid through the object-store lease queue: submission
enqueues the grid's cache misses, two spawned ``repro worker`` processes
claim, simulate and publish, and ``result()`` assembles the grid from
the published objects.  The same grid is then run entirely in-process
and the two results are asserted **identical** — the fleet changes where
the work happens, never what comes back.

Run it with::

    python examples/fleet.py [store_root]

where ``store_root`` is the bucket/cache directory (default: a fresh
temporary directory).  Point it at a shared mount and start extra
workers anywhere that can see it::

    python -m repro.cli worker --store-root <store_root>
"""

import sys
import tempfile
from pathlib import Path

from repro.api import RunRequest, Session

GRID = RunRequest(
    workloads=("trfd", "nasa7"),
    configs=("reference", "ooo"),
)


def main() -> int:
    if len(sys.argv) > 1:
        store_root = Path(sys.argv[1])
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-fleet-")
        store_root = Path(cleanup.name)

    try:
        print(f"fleet store root: {store_root}")
        with Session(cache_dir=store_root, store="object", fleet=2) as session:
            handle = session.submit(GRID)
            print(f"submitted: {handle.status().describe()}")
            fleet_grid = handle.result()
            print(f"finished:  {handle.status().describe()}")
            print(f"engine:    {session.summary()}")

        # the reference: the identical grid, computed in this process
        with Session() as local:
            local_grid = local.run(GRID)

        mismatches = 0
        for (workload, config), local_result in local_grid:
            fleet_result = fleet_grid.get(workload, config)
            same = fleet_result.to_dict() == local_result.to_dict()
            mismatches += 0 if same else 1
            marker = "==" if same else "!!"
            print(f"  {workload:>8} × {config.name:<10} "
                  f"fleet {fleet_result.cycles:>9} cycles "
                  f"{marker} local {local_result.cycles:>9} cycles")
        if mismatches:
            print(f"FAILED: {mismatches} point(s) differ between fleet and local")
            return 1
        print("fleet and in-process results are identical")
        return 0
    finally:
        if cleanup is not None:
            cleanup.cleanup()


if __name__ == "__main__":
    raise SystemExit(main())
