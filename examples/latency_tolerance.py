#!/usr/bin/env python3
"""Latency tolerance study (the paper's Figure 8, for a chosen subset).

The in-order reference machine slows down markedly as main-memory latency
grows from 1 to 100 cycles; the out-of-order machine hides most of it.  The
paper uses this to argue that an out-of-order vector machine could be built
from cheaper, slower DRAM parts without giving up throughput.

Run with::

    python examples/latency_tolerance.py [program ...]
"""

import sys

from repro.analysis import report_latency_tolerance
from repro.core.experiments import figure8_latency_tolerance

DEFAULT_PROGRAMS = ("swm256", "flo52", "trfd")
LATENCIES = (1, 20, 50, 100)


def main() -> int:
    programs = tuple(sys.argv[1:]) or DEFAULT_PROGRAMS
    results = figure8_latency_tolerance(programs=programs, latencies=LATENCIES)
    print(report_latency_tolerance(results, LATENCIES))
    print()
    for program, machines in results.items():
        ref = machines["REF"]
        ooo = machines["OOOVA"]
        ref_growth = ref[LATENCIES[-1]] / ref[LATENCIES[0]]
        ooo_growth = ooo[LATENCIES[-1]] / ooo[LATENCIES[0]]
        print(f"{program}: going from latency {LATENCIES[0]} to {LATENCIES[-1]} slows the "
              f"reference machine by {100 * (ref_growth - 1):.0f}% "
              f"but the OOOVA by only {100 * (ooo_growth - 1):.0f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
