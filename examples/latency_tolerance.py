#!/usr/bin/env python3
"""Latency tolerance study (the paper's Figure 8, for a chosen subset).

The in-order reference machine slows down markedly as main-memory latency
grows from 1 to 100 cycles; the out-of-order machine hides most of it.  The
paper uses this to argue that an out-of-order vector machine could be built
from cheaper, slower DRAM parts without giving up throughput.

Run with::

    python examples/latency_tolerance.py [--jobs N] [--cache-dir D] [program ...]

With ``--cache-dir`` the simulation results persist on disk (shared with
``python -m repro.cli run-all``), so re-running the example is instant; with
``--jobs`` the missing grid points are simulated across worker processes.
Both knobs configure a :class:`repro.api.Session`; the non-preset latency
sweep runs inside :meth:`~repro.api.Session.scope`, which routes the
``figure8_latency_tolerance`` experiment function through the session's
caches without touching process-global state.
"""

import argparse

from repro.analysis import report_latency_tolerance
from repro.api import Session
from repro.core.experiments import figure8_latency_tolerance

DEFAULT_PROGRAMS = ("swm256", "flo52", "trfd")
LATENCIES = (1, 20, 50, 100)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("programs", nargs="*", default=list(DEFAULT_PROGRAMS))
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--cache-dir", default=None)
    args = parser.parse_args()
    overrides = {}
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    if args.cache_dir is not None:
        overrides["cache_dir"] = args.cache_dir

    programs = tuple(args.programs)
    with Session(**overrides) as session:
        with session.scope():
            results = figure8_latency_tolerance(programs=programs, latencies=LATENCIES)
        print(report_latency_tolerance(results, LATENCIES))
        print()
        for program, machines in results.items():
            ref = machines["REF"]
            ooo = machines["OOOVA"]
            ref_growth = ref[LATENCIES[-1]] / ref[LATENCIES[0]]
            ooo_growth = ooo[LATENCIES[-1]] / ooo[LATENCIES[0]]
            print(f"{program}: going from latency {LATENCIES[0]} to {LATENCIES[-1]} slows the "
                  f"reference machine by {100 * (ref_growth - 1):.0f}% "
                  f"but the OOOVA by only {100 * (ooo_growth - 1):.0f}%")
        print()
        print(session.summary())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
